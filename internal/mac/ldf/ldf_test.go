package ldf

import (
	"testing"

	"rtmac/internal/arrival"
	"rtmac/internal/debt"
	"rtmac/internal/mac"
	"rtmac/internal/metrics"
	"rtmac/internal/phy"
)

func fastProfile() phy.Profile {
	return phy.Profile{Name: "test", Slot: 1, DataAirtime: 10, EmptyAirtime: 2, Interval: 100}
}

func runLDF(t *testing.T, seed uint64, p []float64, av arrival.VectorProcess,
	q []float64, intervals int, sched *Scheduler) (*mac.Network, *metrics.Collector) {
	t.Helper()
	col, err := metrics.NewCollector(q)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        seed,
		Profile:     fastProfile(),
		SuccessProb: p,
		Arrivals:    av,
		Required:    q,
		Protocol:    sched,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(intervals); err != nil {
		t.Fatal(err)
	}
	return nw, col
}

func TestLDFName(t *testing.T) {
	if got := NewLDF().Name(); got != "ldf" {
		t.Fatalf("Name = %q, want ldf", got)
	}
	if got := New(debt.PaperLog()).Name(); got != "eldf[log(100)]" {
		t.Fatalf("Name = %q", got)
	}
}

func TestLDFZeroContentionOverhead(t *testing.T) {
	// The centralized policy must squeeze exactly interval/airtime
	// transmissions out of a saturated reliable network.
	av, _ := arrival.Uniform(2, arrival.Deterministic{N: 10})
	nw, col := runLDF(t, 1, []float64{1, 1}, av, []float64{5, 5}, 20, NewLDF())
	st := nw.Medium().Stats()
	if st.Transmissions != 20*10 {
		t.Fatalf("transmissions = %d, want 200 (10 per interval)", st.Transmissions)
	}
	if st.Collisions != 0 {
		t.Fatalf("centralized policy collided %d times", st.Collisions)
	}
	if st.BusyTime != 20*100 {
		t.Fatalf("busy time = %v, want fully busy", st.BusyTime)
	}
	if got := col.Throughput(0) + col.Throughput(1); got != 10 {
		t.Fatalf("total throughput %v, want 10 per interval", got)
	}
}

func TestLDFFulfillsFeasibleLoad(t *testing.T) {
	// Two links, p = 0.8, 2 packets each per interval, 10 attempts per
	// interval. Expected workload 2·2/0.8 = 5 attempts ≪ 10: q = 0.95·λ is
	// comfortably feasible, so the deficiency must vanish.
	av, _ := arrival.Uniform(2, arrival.Deterministic{N: 2})
	_, col := runLDF(t, 2, []float64{0.8, 0.8}, av, []float64{1.9, 1.9}, 2000, NewLDF())
	if d := col.TotalDeficiency(); d > 0.01 {
		t.Fatalf("feasible load left deficiency %v", d)
	}
}

func TestLDFInfeasibleLoadLeavesDeficiency(t *testing.T) {
	// Demand 2 links × 6 packets with only 10 slots and p = 1: at most 10
	// deliveries per interval against q summing to 12.
	av, _ := arrival.Uniform(2, arrival.Deterministic{N: 6})
	_, col := runLDF(t, 3, []float64{1, 1}, av, []float64{6, 6}, 500, NewLDF())
	if d := col.TotalDeficiency(); d < 1.8 {
		t.Fatalf("infeasible load deficiency %v, want ≈ 2", d)
	}
}

func TestLDFServesLargestDebtFirst(t *testing.T) {
	// Link 1 has a requirement but never gets service capacity taken away;
	// track that after an interval where debts differ, the higher-debt link
	// is served first (its packets go out even when time runs short).
	av, err := arrival.NewIndependent(arrival.Deterministic{N: 6}, arrival.Deterministic{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Only 10 fit per interval; q strongly favors link 1.
	_, col := runLDF(t, 4, []float64{1, 1}, av, []float64{1, 6}, 300, NewLDF())
	// Link 1 must get essentially all it needs; link 0 absorbs the shortfall.
	if col.Deficiency(1) > 0.05 {
		t.Fatalf("high-requirement link deficiency %v", col.Deficiency(1))
	}
	if col.Throughput(0) < 3.5 {
		t.Fatalf("low-requirement link throughput %v, want ≥ 3.5 (leftover capacity)", col.Throughput(0))
	}
}

func TestELDFOrderMatchesWeights(t *testing.T) {
	// After one interval in which link 0 is served fully and link 1 not at
	// all, link 1 must outrank link 0 in the next interval's order.
	sched := NewLDF()
	av, err := arrival.NewIndependent(arrival.Deterministic{N: 10}, arrival.Deterministic{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := metrics.NewCollector([]float64{5, 5})
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        5,
		Profile:     fastProfile(),
		SuccessProb: []float64{1, 1},
		Arrivals:    av,
		Required:    []float64{5, 5},
		Protocol:    sched,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(1); err != nil {
		t.Fatal(err)
	}
	// Interval 0: equal (zero) debts, tie-break serves link 0 first: all 10
	// slots go to link 0. Debts: link0 = 5-10 = -5, link1 = +5.
	if nw.Ledger().Debt(0) != -5 || nw.Ledger().Debt(1) != 5 {
		t.Fatalf("debts after interval 0: %v, %v", nw.Ledger().Debt(0), nw.Ledger().Debt(1))
	}
	if err := nw.Run(1); err != nil {
		t.Fatal(err)
	}
	order := sched.Order()
	if order[0] != 1 {
		t.Fatalf("interval 1 order %v, want link 1 first", order)
	}
}

func TestELDFUsesChannelReliabilityInWeights(t *testing.T) {
	// Equal positive debts but p_0 < p_1: Algorithm 1 sorts by f(d⁺)·p, so
	// link 1 must be served first.
	sched := NewLDF()
	av, _ := arrival.Uniform(2, arrival.Deterministic{N: 10})
	col, _ := metrics.NewCollector([]float64{5, 5})
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        6,
		Profile:     fastProfile(),
		SuccessProb: []float64{0.5, 0.9},
		Arrivals:    av,
		Required:    []float64{5, 5},
		Protocol:    sched,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Capture the weights as they stand at the START of interval 1, then run
	// that interval and inspect the order the scheduler chose for it.
	if err := nw.Run(1); err != nil {
		t.Fatal(err)
	}
	w0 := nw.Ledger().Weight(0, debt.Identity(), 0.5)
	w1 := nw.Ledger().Weight(1, debt.Identity(), 0.9)
	if err := nw.Run(1); err != nil {
		t.Fatal(err)
	}
	order := sched.Order()
	if w1 > w0 && order[0] != 1 {
		t.Fatalf("weights (%v, %v) but order %v", w0, w1, order)
	}
	if w0 > w1 && order[0] != 0 {
		t.Fatalf("weights (%v, %v) but order %v", w0, w1, order)
	}
}
