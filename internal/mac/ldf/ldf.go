// Package ldf implements the centralized Extended Largest-Debt-First policy
// (Algorithm 1 of the paper). At the beginning of every interval the
// scheduler sorts all links by f(d_n⁺(k))·p_n in decreasing order and serves
// them in that priority order until the interval ends: the highest-priority
// link with pending packets transmits (and retransmits on loss) back-to-back
// with no contention overhead. With f(x) = x this is the classical LDF
// policy of Hou–Borkar–Kumar, the feasibility-optimal centralized comparator
// used throughout the paper's evaluation.
package ldf

import (
	"fmt"

	"rtmac/internal/debt"
	"rtmac/internal/mac"
)

// Scheduler is the centralized ELDF policy.
type Scheduler struct {
	f debt.InfluenceFunc
	// order is the priority order of the current interval: order[0] is
	// served first.
	order []int
	// weights is the per-interval f(d⁺)p scratch, reused across intervals.
	weights []float64
	// ctx/serveFn cache the interval context (stable across intervals) and
	// the chained-transmission callback, so serving allocates nothing.
	// serveSetFn is the graph-mode counterpart: on a non-complete conflict
	// graph each completed exchange rescans for newly unblocked links.
	ctx        *mac.Context
	serveFn    func(bool)
	serveSetFn func(bool)
}

// New returns an ELDF scheduler with the given debt influence function.
func New(f debt.InfluenceFunc) *Scheduler {
	return &Scheduler{f: f}
}

// NewLDF returns the classical LDF policy, i.e. ELDF with f(x) = x.
func NewLDF() *Scheduler {
	return New(debt.Identity())
}

// Name implements mac.Protocol.
func (s *Scheduler) Name() string {
	if s.f.Name() == "identity" {
		return "ldf"
	}
	return fmt.Sprintf("eldf[%s]", s.f.Name())
}

// Order returns the priority order chosen for the current interval (served
// first to last). It is only meaningful between BeginInterval and
// EndInterval.
func (s *Scheduler) Order() []int {
	out := make([]int, len(s.order))
	copy(out, s.order)
	return out
}

// BeginInterval implements mac.Protocol: sort by f(d⁺)p and start serving.
func (s *Scheduler) BeginInterval(ctx *mac.Context) {
	n := ctx.Links()
	if s.serveFn == nil {
		s.serveFn = func(bool) { s.serveNext(s.ctx) }
		s.serveSetFn = func(bool) { s.serveSet(s.ctx) }
	}
	s.ctx = ctx
	if cap(s.order) < n {
		s.order = make([]int, n)
		s.weights = make([]float64, n)
	}
	s.order = s.order[:n]
	s.weights = s.weights[:n]
	weights := s.weights
	for link := 0; link < n; link++ {
		s.order[link] = link
		weights[link] = ctx.Ledger.Weight(link, s.f, ctx.Med.SuccessProb(link))
	}
	// Decreasing weight; ties broken by link ID for determinism (Eq. 4
	// allows any tie-break). The link-ID tie-break makes the order a strict
	// total order, so this allocation-free insertion sort yields exactly the
	// order sort.SliceStable used to.
	order := s.order
	for i := 1; i < n; i++ {
		li := order[i]
		wi := weights[li]
		j := i - 1
		for j >= 0 {
			lj := order[j]
			wj := weights[lj]
			if wj > wi || (wj == wi && lj < li) {
				break
			}
			order[j+1] = lj
			j--
		}
		order[j+1] = li
	}
	if g := ctx.Med.Graph(); g != nil && !g.Complete() {
		s.serveSet(ctx)
	} else {
		s.serveNext(ctx)
	}
}

// serveNext transmits on the highest-priority link that still has pending
// packets, chaining transmissions back-to-back until nothing is pending or
// nothing fits before the deadline.
func (s *Scheduler) serveNext(ctx *mac.Context) {
	for _, link := range s.order {
		if ctx.Pending(link) > 0 {
			if ctx.TransmitData(link, s.serveFn) {
				return
			}
			// The exchange no longer fits before the deadline; since all
			// packets have equal airtime, no other link fits either
			// (Remark 4: stay idle until the interval ends).
			return
		}
	}
}

// serveSet is serveNext generalized to a partial conflict graph: walking the
// weight order, every link with pending packets whose closed neighborhood is
// idle starts transmitting — a greedy maximum-weight independent set, the
// natural centralized ELDF under spatial reuse. Starting a link marks its
// whole neighborhood busy (the closed row includes the link itself), so later
// links in the same pass are skipped exactly when they conflict with an
// earlier pick. Each completed exchange rescans: the finished link may
// re-serve its own queue or unblock a lower-weight neighbor.
func (s *Scheduler) serveSet(ctx *mac.Context) {
	if !ctx.FitsData() {
		// Equal airtimes: nothing fits for any link (Remark 4).
		return
	}
	for _, link := range s.order {
		if ctx.Pending(link) > 0 && !ctx.Med.BusyFor(link) {
			ctx.TransmitData(link, s.serveSetFn)
		}
	}
}

// EndInterval implements mac.Protocol. ELDF keeps no cross-interval state
// beyond the ledger the network already maintains.
func (s *Scheduler) EndInterval(*mac.Context) {}

var _ mac.Protocol = (*Scheduler)(nil)
