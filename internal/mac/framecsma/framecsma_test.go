package framecsma

import (
	"testing"

	"rtmac/internal/arrival"
	"rtmac/internal/mac"
	"rtmac/internal/mac/ldf"
	"rtmac/internal/metrics"
	"rtmac/internal/phy"
)

func fastProfile() phy.Profile {
	return phy.Profile{Name: "test", Slot: 1, DataAirtime: 10, EmptyAirtime: 2, Interval: 200}
}

func TestValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ControlSlot: -1}); err == nil {
		t.Fatal("negative control slot accepted")
	}
	// Zero-value config picks up the default influence function.
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.F.Name() == "" {
		t.Fatal("influence function not defaulted")
	}
}

func run(t *testing.T, seed uint64, prot mac.Protocol, n int, p float64,
	proc arrival.Process, q float64, intervals int, profile phy.Profile) (*mac.Network, *metrics.Collector) {
	t.Helper()
	av, err := arrival.Uniform(n, proc)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, n)
	req := make([]float64, n)
	for i := range probs {
		probs[i] = p
		req[i] = q
	}
	col, err := metrics.NewCollector(req)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        seed,
		Profile:     profile,
		SuccessProb: probs,
		Arrivals:    av,
		Required:    req,
		Protocol:    prot,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(intervals); err != nil {
		t.Fatal(err)
	}
	return nw, col
}

func TestReliableChannelNearOptimal(t *testing.T) {
	// With p = 1 the expected-retry allocation is exact: frame-based CSMA
	// should fulfill what LDF fulfills, minus only the control overhead
	// (here 2 links × 1 µs = 2 µs of a 200 µs frame).
	cfg := DefaultConfig()
	cfg.ControlSlot = 1
	prot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, col := run(t, 1, prot, 2, 1, arrival.Deterministic{N: 4}, 4, 800, fastProfile())
	if d := col.TotalDeficiency(); d > 0.01 {
		t.Fatalf("reliable-channel deficiency %v, want ≈ 0", d)
	}
}

func TestUnreliableChannelSubOptimal(t *testing.T) {
	// The paper's point about [23]: on unreliable channels the open-loop
	// schedule wastes luck (early finishers idle their slots) and cannot
	// rescue the unlucky, so at a load LDF fulfills, frame-based CSMA
	// leaves a clearly larger deficiency.
	const (
		n         = 4
		p         = 0.6
		q         = 1.9 // 95% of arrivals; LDF workload ≈ 12.7 of 20 slots
		intervals = 2000
	)
	proc := arrival.Deterministic{N: 2}
	prot, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, frameCol := run(t, 2, prot, n, p, proc, q, intervals, fastProfile())
	_, ldfCol := run(t, 2, ldf.NewLDF(), n, p, proc, q, intervals, fastProfile())
	frame, ldfD := frameCol.TotalDeficiency(), ldfCol.TotalDeficiency()
	if ldfD > 0.02 {
		t.Fatalf("LDF deficiency %v on this load, expected ≈ 0 (test assumption)", ldfD)
	}
	if frame < ldfD+0.05 {
		t.Fatalf("frame-based CSMA deficiency %v not clearly above LDF's %v", frame, ldfD)
	}
}

func TestControlOverheadCostsCapacity(t *testing.T) {
	// Doubling the control phase must not increase throughput; at a
	// saturating load it strictly reduces it.
	proc := arrival.Deterministic{N: 10}
	cheap := DefaultConfig()
	cheap.ControlSlot = 1
	costly := DefaultConfig()
	costly.ControlSlot = 40 // 2 links × 40 µs = 80 µs of a 200 µs frame
	cheapProt, err := New(cheap)
	if err != nil {
		t.Fatal(err)
	}
	costlyProt, err := New(costly)
	if err != nil {
		t.Fatal(err)
	}
	_, cheapCol := run(t, 3, cheapProt, 2, 1, proc, 10, 300, fastProfile())
	_, costlyCol := run(t, 3, costlyProt, 2, 1, proc, 10, 300, fastProfile())
	cheapTP := cheapCol.Throughput(0) + cheapCol.Throughput(1)
	costlyTP := costlyCol.Throughput(0) + costlyCol.Throughput(1)
	if costlyTP >= cheapTP {
		t.Fatalf("80 µs control phase did not cost throughput: %v vs %v", costlyTP, cheapTP)
	}
}

func TestNoEventLeaksUnderTinyIntervals(t *testing.T) {
	// An interval barely larger than the control phase: the protocol must
	// neither schedule past the deadline nor leak timers (the network
	// errors on leaks).
	profile := phy.Profile{Name: "tiny", Slot: 1, DataAirtime: 10, EmptyAirtime: 2, Interval: 25}
	cfg := DefaultConfig()
	cfg.ControlSlot = 10 // 2 links → 20 µs control in a 25 µs interval
	prot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run(t, 4, prot, 2, 0.5, arrival.Deterministic{N: 1}, 0.5, 500, profile)
}
