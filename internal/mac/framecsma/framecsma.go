// Package framecsma implements a frame-based CSMA baseline in the spirit of
// Lu, Li, Srikant & Ying, "Optimal distributed scheduling of real-time
// traffic with hard deadlines" (CDC 2016), which the paper contrasts with
// DB-DP in its introduction: schedules are generated distributedly once per
// frame (using a control phase at the frame start), and then executed
// open-loop. The scheme is feasibility-optimal under RELIABLE transmissions
// but sub-optimal over unreliable channels, because the within-frame
// schedule cannot adapt to packet losses — exactly the behaviour this
// implementation reproduces:
//
//   - a control phase of N mini-slots opens every frame (modelling [23]'s
//     control packets; its duration is pure overhead);
//   - transmission slots are then pre-allocated to links in debt order,
//     each link receiving ⌈pending/p⌉ slots (its expected retry need)
//     until the frame budget runs out;
//   - each link transmits only within its own allocation: if it finishes
//     early the leftover slots idle, and if it is unlucky it cannot borrow
//     slots that idle elsewhere. Both wastes are the price of open-loop
//     scheduling that the adaptive DB-DP and ELDF policies avoid.
package framecsma

import (
	"fmt"
	"math"

	"rtmac/internal/debt"
	"rtmac/internal/mac"
	"rtmac/internal/sim"
)

// Config parameterizes the baseline.
type Config struct {
	// ControlSlot is the duration of one control mini-slot; every frame
	// starts with one mini-slot per link (schedule agreement overhead).
	ControlSlot sim.Time
	// F is the debt influence function used to order links when slots are
	// allocated; the zero value means the paper's log function.
	F debt.InfluenceFunc
}

// DefaultConfig uses 20 µs control mini-slots (a conservative stand-in for
// [23]'s control packets) and the paper's influence function.
func DefaultConfig() Config {
	return Config{ControlSlot: 20, F: debt.PaperLog()}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ControlSlot < 0 {
		return fmt.Errorf("framecsma: negative control slot %v", c.ControlSlot)
	}
	return nil
}

// Protocol is the frame-based CSMA policy.
type Protocol struct {
	cfg Config
	// Per-interval scratch: remaining pre-allocated attempts per link and
	// the debt-ordered link sequence.
	alloc []int
	order []int
	// timer is the pending control-phase or idle-slot event, cancelled at
	// interval end so nothing leaks past the deadline.
	timer *sim.Timer
	// weights is the per-interval debt-weight scratch.
	weights []float64
	// ctx/serveFn/timerFn cache the interval context (stable across
	// intervals) and the continuation callbacks, keeping the frame execution
	// allocation-free.
	ctx     *mac.Context
	serveFn func(bool)
	timerFn func()
}

// New validates cfg and returns the protocol.
func New(cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.F.Name() == "" {
		cfg.F = debt.PaperLog()
	}
	return &Protocol{cfg: cfg}, nil
}

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "frame-csma" }

// BeginInterval implements mac.Protocol: run the control phase, pre-allocate
// the frame's transmission slots in debt order, then execute open-loop.
func (p *Protocol) BeginInterval(ctx *mac.Context) {
	n := ctx.Links()
	if p.serveFn == nil {
		p.serveFn = func(bool) { p.serveNext(p.ctx) }
		p.timerFn = func() {
			p.timer = nil
			p.serveNext(p.ctx)
		}
	}
	p.ctx = ctx
	if cap(p.alloc) < n {
		p.alloc = make([]int, n)
		p.order = make([]int, n)
		p.weights = make([]float64, n)
	}
	p.alloc = p.alloc[:n]
	p.order = p.order[:n]
	p.weights = p.weights[:n]

	// Debt ordering, as the distributed contention of [23] would produce.
	// Decreasing weight, ties broken by link ID: a strict total order, so
	// this allocation-free insertion sort reproduces sort.SliceStable's
	// result exactly.
	weights := p.weights
	for link := 0; link < n; link++ {
		p.order[link] = link
		weights[link] = ctx.Ledger.Weight(link, p.cfg.F, ctx.Med.SuccessProb(link))
	}
	order := p.order
	for i := 1; i < n; i++ {
		li := order[i]
		wi := weights[li]
		j := i - 1
		for j >= 0 {
			lj := order[j]
			wj := weights[lj]
			if wj > wi || (wj == wi && lj < li) {
				break
			}
			order[j+1] = lj
			j--
		}
		order[j+1] = li
	}

	// Control phase consumes N mini-slots off the top of the frame.
	controlTime := sim.Time(n) * p.cfg.ControlSlot
	budget := int((ctx.Remaining() - controlTime) / ctx.Profile.DataAirtime)
	if budget < 0 {
		budget = 0
	}
	// Open-loop slot allocation: expected retry need, in debt order.
	for _, link := range p.order {
		p.alloc[link] = 0
		if budget == 0 || ctx.Pending(link) == 0 {
			continue
		}
		need := int(math.Ceil(float64(ctx.Pending(link)) / ctx.Med.SuccessProb(link)))
		if need > budget {
			need = budget
		}
		p.alloc[link] = need
		budget -= need
	}

	// Execute after the control phase (unless the frame is all control).
	if controlTime >= ctx.Remaining() {
		return
	}
	p.timer = ctx.Eng.After(controlTime, p.timerFn)
}

// serveNext walks the allocation open-loop: the next link in debt order with
// remaining allocated slots uses one. A slot whose owner has no pending
// packet burns as idle airtime (the non-adaptivity cost); it is not
// reassigned.
func (p *Protocol) serveNext(ctx *mac.Context) {
	for _, link := range p.order {
		if p.alloc[link] == 0 {
			continue
		}
		p.alloc[link]--
		if ctx.Pending(link) > 0 {
			if !ctx.TransmitData(link, p.serveFn) {
				return // nothing fits before the deadline anymore
			}
			return
		}
		// Idle slot: its owner finished early. Time passes, nobody talks.
		if ctx.Remaining() < ctx.Profile.DataAirtime {
			return
		}
		p.timer = ctx.Eng.After(ctx.Profile.DataAirtime, p.timerFn)
		return
	}
}

// EndInterval implements mac.Protocol.
func (p *Protocol) EndInterval(ctx *mac.Context) {
	if p.timer != nil {
		ctx.Eng.Cancel(p.timer)
		p.timer = nil
	}
	for i := range p.alloc {
		p.alloc[i] = 0
	}
}

var _ mac.Protocol = (*Protocol)(nil)
