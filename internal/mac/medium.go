package mac

import (
	"rtmac/internal/medium"
	"rtmac/internal/sim"
)

// Medium is the channel interface protocols program against through the
// Context. It is the subset of *medium.Medium the protocols use: starting
// transmissions, carrier sensing (global and per-neighborhood), the conflict
// graph, and the reliability model. Extracting it keeps protocol code
// independent of the concrete channel implementation; the network itself
// retains the concrete medium for reporting and trace wiring.
type Medium interface {
	// Start begins a transmission; see medium.Medium.Start.
	Start(link int, duration sim.Time, empty bool, onDone func(medium.Outcome)) *medium.Transmission
	// Links returns the number of links sharing the channel.
	Links() int
	// SuccessProb returns link n's long-run mean delivery probability p_n.
	SuccessProb(n int) float64
	// Busy reports whether any transmission is in flight anywhere.
	Busy() bool
	// BusyFor reports whether link n's closed neighborhood is occupied; with
	// no conflict graph it equals Busy.
	BusyFor(n int) bool
	// Graph returns the conflict graph, or nil for the fully-interfering
	// channel.
	Graph() *medium.Graph
	// Subscribe registers a global carrier-sense listener.
	Subscribe(l medium.Listener)
	// SubscribeLinks registers a per-link carrier-sense listener (conflict
	// graph only).
	SubscribeLinks(l medium.LinkListener)
}

var _ Medium = (*medium.Medium)(nil)
