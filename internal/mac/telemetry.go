package mac

import (
	"fmt"

	"rtmac/internal/perm"
	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

// SwapHook observes one DP priority-swap decision: pos is the priority
// position C(k), down/up the candidate link ids, accepted whether the
// exchange was committed. Protocols expose SetSwapHook(SwapHook) to opt in;
// the network wires it automatically.
type SwapHook func(k int64, at sim.Time, pos, down, up int, accepted bool)

// swapHookCarrier is implemented by protocols with observable swap dynamics
// (the DP family).
type swapHookCarrier interface {
	SetSwapHook(SwapHook)
}

// priorityCarrier is implemented by protocols maintaining an explicit
// priority permutation σ (the DP family); the network streams per-interval
// σ snapshots from it so the runtime monitor can audit bijectivity and swap
// evolution from the event stream alone.
type priorityCarrier interface {
	Priorities() perm.Permutation
}

// priorityCopier lets the network snapshot σ into a reusable scratch slice
// instead of paying Priorities' per-interval clone on the event hot path.
type priorityCopier interface {
	CopyPriorities(dst perm.Permutation) perm.Permutation
}

// debtHistogramBounds cover positive debts from "caught up" through the
// pathological backlog regime; debts beyond 64 packets land in +Inf.
var debtHistogramBounds = []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}

// backoffHistogramBounds cover Eq. 6 counters (≤ N+3) and the exponential
// windows of the CSMA baselines (up to 1024 slots).
var backoffHistogramBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// instrumentation bundles the network-level metrics and the event stream.
// The registry-backed parts are always on (counter updates are cheap and
// give Report and tests one source of truth); event emission only happens
// when a sink is attached.
type instrumentation struct {
	sink telemetry.Sink

	intervals    *telemetry.Counter
	swapAccepted *telemetry.Counter
	swapRejected *telemetry.Counter

	engineEvents  *telemetry.Gauge
	queueDepthMax *telemetry.Gauge
	utilization   *telemetry.Gauge
	dataFraction  *telemetry.Gauge
	emptyFraction *telemetry.Gauge
	collFraction  *telemetry.Gauge
	intervalsPerS *telemetry.Gauge

	debtHist    *telemetry.Histogram
	backoffHist *telemetry.Histogram

	// prioKeys caches the "l<n>" field names of the priority-snapshot event
	// (built once; one snapshot is emitted per interval when a sink is
	// attached and the protocol carries priorities).
	prioKeys []string

	// Scratch Fields maps, one per emission site, reused across events. Each
	// site writes a fixed key set, so steady-state emission only overwrites
	// values — no map growth, no per-event allocation. Safe because the Sink
	// contract forbids retaining the Fields map beyond the Emit call.
	txFields       map[string]float64
	backoffFields  map[string]float64
	debtFields     map[string]float64
	swapFields     map[string]float64
	intervalFields map[string]float64
	prioFields     map[string]float64
	// prioScratch is the reusable σ snapshot filled by priorityCopier
	// protocols.
	prioScratch perm.Permutation
}

func newInstrumentation(reg *telemetry.Registry) *instrumentation {
	return &instrumentation{
		intervals:     reg.Counter("rtmac_intervals_total", "completed simulation intervals"),
		swapAccepted:  reg.Counter("rtmac_swap_accepted_total", "DP priority swaps committed"),
		swapRejected:  reg.Counter("rtmac_swap_rejected_total", "DP swap candidacies that did not commit"),
		engineEvents:  reg.Gauge("rtmac_engine_events_fired", "discrete events executed by the engine"),
		queueDepthMax: reg.Gauge("rtmac_engine_queue_depth_max", "high-water mark of the engine event queue"),
		utilization:   reg.Gauge("rtmac_channel_utilization", "fraction of simulated time the channel was busy"),
		dataFraction:  reg.Gauge("rtmac_airtime_data_fraction", "fraction of simulated time spent on clean data exchanges"),
		emptyFraction: reg.Gauge("rtmac_airtime_empty_fraction", "fraction of simulated time spent on clean empty frames"),
		collFraction:  reg.Gauge("rtmac_airtime_collided_fraction", "fraction of simulated time lost to collisions"),
		intervalsPerS: reg.Gauge("rtmac_wallclock_intervals_per_second", "simulated intervals per wall-clock second over the last Run call"),
		debtHist:      reg.Histogram("rtmac_debt_positive", "positive delivery debt per link per interval, packets", debtHistogramBounds),
		backoffHist:   reg.Histogram("rtmac_backoff_slots", "initial backoff counters handed to the contention coordinator", backoffHistogramBounds),

		txFields:       make(map[string]float64, 3),
		backoffFields:  make(map[string]float64, 1),
		debtFields:     make(map[string]float64, 3),
		swapFields:     make(map[string]float64, 4),
		intervalFields: make(map[string]float64, 3),
	}
}

// observeDebts feeds the ledger's update hook: histogram always, one
// network-wide debt event per interval when a sink is attached.
func (in *instrumentation) observeDebts(k int64, at sim.Time, debts []float64) {
	maxDebt, sum := 0.0, 0.0
	positive := 0
	for _, d := range debts {
		pos := d
		if pos < 0 {
			pos = 0
		} else if pos > 0 {
			positive++
		}
		in.debtHist.Observe(pos)
		sum += d
		if d > maxDebt {
			maxDebt = d
		}
	}
	if in.sink != nil {
		in.debtFields["max"] = maxDebt
		in.debtFields["mean"] = sum / float64(len(debts))
		in.debtFields["positive"] = float64(positive)
		in.sink.Emit(telemetry.Event{
			K: k, At: at, Link: -1, Kind: telemetry.EventDebt,
			Fields: in.debtFields,
		})
	}
}

// observeSwap feeds the protocol's swap hook.
func (in *instrumentation) observeSwap(k int64, at sim.Time, pos, down, up int, accepted bool) {
	acc := 0.0
	if accepted {
		in.swapAccepted.Inc()
		acc = 1
	} else {
		in.swapRejected.Inc()
	}
	if in.sink != nil {
		in.swapFields["pos"] = float64(pos)
		in.swapFields["down"] = float64(down)
		in.swapFields["up"] = float64(up)
		in.swapFields["accepted"] = acc
		in.sink.Emit(telemetry.Event{
			K: k, At: at, Link: -1, Kind: telemetry.EventSwap,
			Fields: in.swapFields,
		})
	}
}

// endInterval updates the per-interval gauges and emits the interval event.
func (in *instrumentation) endInterval(nw *Network, k int64, end sim.Time) {
	in.intervals.Inc()
	eng := nw.eng
	in.engineEvents.Set(float64(eng.EventsFired()))
	in.queueDepthMax.Set(float64(eng.MaxPending()))
	if now := eng.Now(); now > 0 {
		at := nw.med.Airtime()
		span := float64(now)
		in.utilization.Set(float64(at.Busy) / span)
		in.dataFraction.Set(float64(at.Data) / span)
		in.emptyFraction.Set(float64(at.Empty) / span)
		in.collFraction.Set(float64(at.Collided) / span)
	}
	if in.sink != nil {
		arrivals, served, pending := 0, 0, 0
		for n := 0; n < nw.ctx.Links(); n++ {
			arrivals += nw.ctx.Arrivals(n)
			served += nw.ctx.Served(n)
			pending += nw.ctx.Pending(n)
		}
		in.intervalFields["arrivals"] = float64(arrivals)
		in.intervalFields["served"] = float64(served)
		in.intervalFields["expired"] = float64(pending)
		in.sink.Emit(telemetry.Event{
			K: k, At: end, Link: -1, Kind: telemetry.EventInterval,
			Fields: in.intervalFields,
		})
		if nw.prio != nil {
			prio := in.prioScratch
			if pc, ok := nw.prio.(priorityCopier); ok {
				prio = pc.CopyPriorities(prio)
				in.prioScratch = prio
			} else {
				prio = nw.prio.Priorities()
			}
			in.emitPriorities(prio, k, end)
		}
	}
}

// emitPriorities streams the post-swap σ(k) snapshot: field l<n> holds link
// n's priority index. Emitted after the interval event, so a stream reader
// sees the interval's swaps strictly before the permutation they produced.
func (in *instrumentation) emitPriorities(prio perm.Permutation, k int64, at sim.Time) {
	n := prio.Len()
	if in.prioKeys == nil {
		in.prioKeys = make([]string, n)
		for i := range in.prioKeys {
			in.prioKeys[i] = fmt.Sprintf("l%d", i)
		}
		in.prioFields = make(map[string]float64, n)
	}
	for link, pr := range prio {
		in.prioFields[in.prioKeys[link]] = float64(pr)
	}
	in.sink.Emit(telemetry.Event{
		K: k, At: at, Link: -1, Kind: telemetry.EventPriority, Fields: in.prioFields,
	})
}
