package mac

import (
	"testing"

	"rtmac/internal/medium"
	"rtmac/internal/sim"
)

const testSlot = 9

func newContentionFixture(t *testing.T, links int) (*sim.Engine, *medium.Medium, *Contention) {
	t.Helper()
	eng := sim.NewEngine(1)
	p := make([]float64, links)
	for i := range p {
		p[i] = 1
	}
	med, err := medium.New(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := NewContention(eng, med, testSlot)
	if err != nil {
		t.Fatal(err)
	}
	return eng, med, cont
}

func TestContentionFiresInCounterOrder(t *testing.T) {
	eng, med, cont := newContentionFixture(t, 4)
	var fireTimes []sim.Time
	var fireLinks []int
	for link, counter := range []int{3, 1, 2, 0} {
		link, counter := link, counter
		cont.Add(link, counter, Contender{Fire: func() bool {
			fireTimes = append(fireTimes, eng.Now())
			fireLinks = append(fireLinks, link)
			med.Start(link, 100, false, nil)
			return true
		}})
	}
	cont.Settle()
	eng.Run()
	wantLinks := []int{3, 1, 2, 0}
	// Link 3 fires immediately at t=0; each subsequent link fires after its
	// remaining countdown runs during idle periods that follow each 100 µs
	// transmission.
	wantTimes := []sim.Time{0, 100 + testSlot, 200 + 2*testSlot, 300 + 3*testSlot}
	if len(fireLinks) != 4 {
		t.Fatalf("fired %d links, want 4", len(fireLinks))
	}
	for i := range wantLinks {
		if fireLinks[i] != wantLinks[i] || fireTimes[i] != wantTimes[i] {
			t.Fatalf("firing sequence %v at %v, want %v at %v",
				fireLinks, fireTimes, wantLinks, wantTimes)
		}
	}
}

func TestContentionFreezesWhileBusy(t *testing.T) {
	eng, med, cont := newContentionFixture(t, 2)
	var fireAt sim.Time = -1
	cont.Add(0, 2, Contender{Fire: func() bool {
		fireAt = eng.Now()
		return false
	}})
	cont.Settle()
	// An external transmission from t=5 to t=105 freezes the countdown after
	// zero boundaries have elapsed (first boundary would be at 9).
	eng.ScheduleAt(5, func() { med.Start(1, 100, false, nil) })
	eng.Run()
	// Countdown resumes at 105: boundaries at 114 (counter 1) and 123 (fire).
	if fireAt != 123 {
		t.Fatalf("fired at %v, want 123", fireAt)
	}
}

func TestContentionSimultaneousZerosCollide(t *testing.T) {
	eng, med, cont := newContentionFixture(t, 3)
	outcomes := map[int]medium.Outcome{}
	for link := 0; link < 2; link++ {
		link := link
		cont.Add(link, 2, Contender{Fire: func() bool {
			med.Start(link, 50, false, func(o medium.Outcome) { outcomes[link] = o })
			return true
		}})
	}
	cont.Settle()
	eng.Run()
	if outcomes[0] != medium.Collided || outcomes[1] != medium.Collided {
		t.Fatalf("outcomes = %v, want both collided", outcomes)
	}
}

func TestContentionReachedOneSensesBusy(t *testing.T) {
	// Link 0 fires at boundary 1; link 1's counter enters 1 at the same
	// boundary and must sense busy.
	eng, med, cont := newContentionFixture(t, 2)
	var sensedBusy *bool
	cont.Add(0, 1, Contender{Fire: func() bool {
		med.Start(0, 50, false, nil)
		return true
	}})
	cont.Add(1, 2, Contender{
		Fire:       func() bool { return false },
		ReachedOne: func(busy bool) { sensedBusy = &busy },
	})
	cont.Settle()
	eng.Run()
	if sensedBusy == nil {
		t.Fatal("ReachedOne never called")
	}
	if !*sensedBusy {
		t.Fatal("sensed idle, want busy (link 0 fired at the same boundary)")
	}
}

func TestContentionReachedOneSensesIdle(t *testing.T) {
	// Nobody fires when link 1's counter enters 1: it must sense idle.
	eng, _, cont := newContentionFixture(t, 2)
	var sensedBusy *bool
	cont.Add(1, 2, Contender{
		Fire:       func() bool { return false },
		ReachedOne: func(busy bool) { sensedBusy = &busy },
	})
	cont.Settle()
	eng.Run()
	if sensedBusy == nil {
		t.Fatal("ReachedOne never called")
	}
	if *sensedBusy {
		t.Fatal("sensed busy, want idle")
	}
}

func TestContentionDeclinedFireCountsAsIdle(t *testing.T) {
	// A link that fires but declines to transmit leaves the channel idle:
	// the sensing link at counter 1 must see idle.
	eng, _, cont := newContentionFixture(t, 2)
	var sensedBusy *bool
	cont.Add(0, 1, Contender{Fire: func() bool { return false }})
	cont.Add(1, 2, Contender{
		Fire:       func() bool { return false },
		ReachedOne: func(busy bool) { sensedBusy = &busy },
	})
	cont.Settle()
	eng.Run()
	if sensedBusy == nil || *sensedBusy {
		t.Fatalf("sensedBusy = %v, want idle", sensedBusy)
	}
}

func TestContentionSettleFiresInitialZeros(t *testing.T) {
	eng, med, cont := newContentionFixture(t, 2)
	var fireAt sim.Time = -1
	cont.Add(0, 0, Contender{Fire: func() bool {
		fireAt = eng.Now()
		med.Start(0, 30, false, nil)
		return true
	}})
	cont.Settle()
	eng.Run()
	if fireAt != 0 {
		t.Fatalf("counter-0 entry fired at %v, want immediately at 0", fireAt)
	}
}

func TestContentionSettleSensesInitialOnes(t *testing.T) {
	// A counter starting at 1 senses at Settle time: busy iff some counter-0
	// entry starts transmitting at that same instant (the C(k)=1 corner of
	// the DP protocol).
	eng, med, cont := newContentionFixture(t, 2)
	var sensedBusy *bool
	cont.Add(0, 0, Contender{Fire: func() bool {
		med.Start(0, 30, false, nil)
		return true
	}})
	cont.Add(1, 1, Contender{
		Fire:       func() bool { return false },
		ReachedOne: func(busy bool) { sensedBusy = &busy },
	})
	cont.Settle()
	eng.Run()
	if sensedBusy == nil {
		t.Fatal("ReachedOne never called")
	}
	if !*sensedBusy {
		t.Fatal("sensed idle at settle, want busy")
	}
}

func TestContentionReachedOneFiresOnce(t *testing.T) {
	eng, med, cont := newContentionFixture(t, 3)
	calls := 0
	// Busy period between entering 1 and firing must not re-trigger sensing.
	cont.Add(0, 2, Contender{
		Fire:       func() bool { return false },
		ReachedOne: func(bool) { calls++ },
	})
	cont.Settle()
	eng.ScheduleAt(10, func() { med.Start(1, 40, false, nil) })
	eng.Run()
	if calls != 1 {
		t.Fatalf("ReachedOne called %d times, want 1", calls)
	}
}

func TestContentionClearCancelsCountdown(t *testing.T) {
	eng, _, cont := newContentionFixture(t, 2)
	fired := false
	cont.Add(0, 3, Contender{Fire: func() bool { fired = true; return false }})
	cont.Settle()
	cont.Clear()
	eng.Run()
	if fired {
		t.Fatal("cleared entry fired")
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events pending after Clear", eng.Pending())
	}
	if cont.Active() != 0 {
		t.Fatalf("Active = %d after Clear", cont.Active())
	}
}

func TestContentionRemove(t *testing.T) {
	eng, _, cont := newContentionFixture(t, 2)
	fired := map[int]bool{}
	for link := 0; link < 2; link++ {
		link := link
		cont.Add(link, 2, Contender{Fire: func() bool { fired[link] = true; return false }})
	}
	cont.Settle()
	cont.Remove(0)
	eng.Run()
	if fired[0] {
		t.Fatal("removed entry fired")
	}
	if !fired[1] {
		t.Fatal("remaining entry did not fire")
	}
}

func TestContentionCounterQuery(t *testing.T) {
	eng, _, cont := newContentionFixture(t, 2)
	cont.Add(0, 5, Contender{Fire: func() bool { return false }})
	if c, ok := cont.Counter(0); !ok || c != 5 {
		t.Fatalf("Counter(0) = %d, %v; want 5, true", c, ok)
	}
	if _, ok := cont.Counter(1); ok {
		t.Fatal("Counter(1) reported a non-contending link")
	}
	cont.Settle()
	eng.RunUntil(2 * testSlot)
	if c, ok := cont.Counter(0); !ok || c != 3 {
		t.Fatalf("Counter(0) after 2 slots = %d, %v; want 3, true", c, ok)
	}
}

func TestContentionAddPanics(t *testing.T) {
	_, _, cont := newContentionFixture(t, 2)
	cont.Add(0, 1, Contender{Fire: func() bool { return false }})
	for name, fn := range map[string]func(){
		"duplicate link":   func() { cont.Add(0, 2, Contender{Fire: func() bool { return false }}) },
		"negative counter": func() { cont.Add(1, -1, Contender{Fire: func() bool { return false }}) },
		"nil fire":         func() { cont.Add(1, 1, Contender{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestContentionValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	med, _ := medium.New(eng, []float64{1})
	if _, err := NewContention(nil, med, 9); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewContention(eng, nil, 9); err == nil {
		t.Error("nil medium accepted")
	}
	if _, err := NewContention(eng, med, 0); err == nil {
		t.Error("zero slot accepted")
	}
}

func TestContentionZeroCounterAddedDuringBusyDefersOneSlot(t *testing.T) {
	eng, med, cont := newContentionFixture(t, 2)
	var fireAt sim.Time = -1
	med.Start(1, 100, false, nil)
	cont.Add(0, 0, Contender{Fire: func() bool { fireAt = eng.Now(); return false }})
	cont.Settle() // busy: no effect
	eng.Run()
	if fireAt != 100+testSlot {
		t.Fatalf("fired at %v, want %v (one slot after idle)", fireAt, sim.Time(100+testSlot))
	}
}
