package mac

import (
	"fmt"

	"rtmac/internal/medium"
	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

// Contender receives the contention coordinator's callbacks for one link.
type Contender struct {
	// Fire is called when the link's backoff counter reaches zero. The link
	// should start a transmission and return true; returning false means it
	// declined (nothing to send, or nothing fits before the deadline), in
	// which case the channel may remain idle at this boundary.
	Fire func() (started bool)
	// ReachedOne, if non-nil, is called at the instant the counter enters
	// the value 1 — the carrier-sensing moment of Eqs. (7)/(8). busy
	// reports whether some other link began transmitting at this same
	// boundary (boundaries occur only after a full idle slot, so that is
	// the only way the channel can be busy at one).
	ReachedOne func(busy bool)
}

type contentionEntry struct {
	counter   int
	active    bool
	contender Contender
}

// Contention coordinates slotted backoff countdown over a shared medium:
// while the channel is idle, every registered counter decreases by one per
// slot; while it is busy, all counters freeze. Counters reaching zero fire
// (and, if several fire at the same boundary, their transmissions collide on
// the medium). This models the discrete freeze-on-busy backoff of 802.11
// with the coarse slot-boundary carrier sensing the paper assumes.
//
// A Contention subscribes to its medium once and lives as long as the
// network; protocols Add entries each interval and Clear at interval end.
//
// Entries live in a link-indexed array (links are dense small integers), so
// every boundary walks them in deterministic link order with no allocation.
type Contention struct {
	eng     *sim.Engine
	med     *medium.Medium
	slot    sim.Time
	entries []contentionEntry // indexed by link; active flag marks presence
	active  int
	// Slot-skipping state. Boundaries where nothing can fire or sense are
	// pure counter decrements, so the clock is armed directly at the next
	// interesting boundary and the skipped decrements are applied in bulk:
	// base anchors the boundary grid (the last materialization instant),
	// skip is the number of boundaries the armed target covers, and target
	// is the armed instant (base + skip·slot). Counters are materialized —
	// decremented by the boundaries that already elapsed — whenever the
	// countdown freezes or an entry joins mid-grid.
	base   sim.Time
	skip   int
	target sim.Time
	// backoffHist, when set, observes every initial backoff counter —
	// protocol-independent visibility into how much idle countdown each
	// policy pays per interval.
	backoffHist *telemetry.Histogram
	// backoffObs, when set, additionally observes (link, counter) pairs; the
	// network uses it to stream per-link backoff events.
	backoffObs func(link, counter int)
	// fireObs, when set, observes every counter-zero firing and whether the
	// link actually started a transmission; senseObs mirrors each delivered
	// carrier-sense callback. Both feed the packet-journey tracer.
	fireObs  func(link int, started bool)
	senseObs func(link int, busy bool)
	// scratch reused by processBoundary.
	fired, sensed []int
	// Conflict-graph (spatial-reuse) mode, active when the medium carries a
	// non-complete conflict graph. Each link counts down on its own slot
	// grid, anchored at anchors[link] (interval join or the instant its
	// neighborhood went idle), and freezes independently while its
	// neighborhood is busy (frozen[link]). The engine clock is armed at the
	// global minimum of the per-link interesting boundaries. A complete (or
	// absent) graph uses the seed single-grid path above, byte-identically.
	graph      *medium.Graph
	anchors    []sim.Time
	frozen     []bool
	inBoundary bool
}

// NewContention creates a coordinator for the given medium with the given
// backoff slot duration and subscribes it to carrier-sense transitions.
func NewContention(eng *sim.Engine, med *medium.Medium, slot sim.Time) (*Contention, error) {
	if eng == nil || med == nil {
		return nil, fmt.Errorf("mac: contention needs an engine and a medium")
	}
	if slot <= 0 {
		return nil, fmt.Errorf("mac: non-positive slot %v", slot)
	}
	c := &Contention{
		eng:     eng,
		med:     med,
		slot:    slot,
		entries: make([]contentionEntry, med.Links()),
		fired:   make([]int, 0, med.Links()),
		sensed:  make([]int, 0, med.Links()),
	}
	if g := med.Graph(); g != nil && !g.Complete() {
		c.graph = g
		c.anchors = make([]sim.Time, med.Links())
		c.frozen = make([]bool, med.Links())
		// Per-link countdown grids with per-neighborhood freezing: the clock
		// dispatches to the graph boundary walk and carrier sensing arrives
		// per link.
		eng.SetClockFunc(c.onBoundaryGraph)
		med.SubscribeLinks(c)
		return c, nil
	}
	// The slot boundary rides the engine's out-of-heap slot clock: one
	// recurring timer re-armed every idle slot would otherwise dominate heap
	// traffic (and allocate a method-value closure per arm).
	eng.SetClockFunc(c.onBoundary)
	med.Subscribe(c)
	return c, nil
}

// Add registers a link with the given initial backoff counter.
//
// Counters are interpreted as "idle slots to wait before transmitting": a
// counter of zero fires at the next settle point (immediately if the channel
// is idle). A counter that is at one — whether it started there or got there
// by decrement — triggers ReachedOne exactly once, at the instant it enters
// that value.
//
// Add panics if the link is already registered; protocols must Remove or
// Clear first.
func (c *Contention) Add(link, counter int, contender Contender) {
	if link < 0 || link >= len(c.entries) {
		panic(fmt.Sprintf("mac: link %d outside [0, %d)", link, len(c.entries)))
	}
	if c.entries[link].active {
		panic(fmt.Sprintf("mac: link %d already contending", link))
	}
	if counter < 0 {
		panic(fmt.Sprintf("mac: negative backoff counter %d for link %d", counter, link))
	}
	if contender.Fire == nil {
		panic(fmt.Sprintf("mac: link %d contender without Fire", link))
	}
	if c.graph != nil {
		c.entries[link] = contentionEntry{counter: counter, active: true, contender: contender}
		c.active++
		c.anchors[link] = c.eng.Now()
		c.frozen[link] = c.med.BusyFor(link)
		if c.backoffHist != nil {
			c.backoffHist.Observe(float64(counter))
		}
		if c.backoffObs != nil {
			c.backoffObs(link, counter)
		}
		c.rearmGraph()
		return
	}
	// Materialize boundaries that already elapsed before the entry joins, so
	// the bulk decrement never back-applies them to it.
	c.sync()
	c.entries[link] = contentionEntry{counter: counter, active: true, contender: contender}
	c.active++
	if c.backoffHist != nil {
		c.backoffHist.Observe(float64(counter))
	}
	if c.backoffObs != nil {
		c.backoffObs(link, counter)
	}
	if c.eng.ClockArmed() {
		// Adding an entry can only move the next interesting boundary
		// earlier, and only the new entry can move it: retarget from its
		// horizon alone instead of rescanning every entry.
		if at := c.base + sim.Time(horizon(&c.entries[link]))*c.slot; at < c.target {
			c.eng.DisarmClock()
			c.skip = int((at - c.base) / c.slot)
			c.target = at
			c.eng.ArmClock(at)
		}
		return
	}
	c.arm()
}

// SetBackoffHistogram installs the telemetry histogram fed by every Add.
func (c *Contention) SetBackoffHistogram(h *telemetry.Histogram) { c.backoffHist = h }

// SetBackoffObserver installs a per-link observer fed by every Add, called
// with the link and its initial counter at the instant it joins contention.
func (c *Contention) SetBackoffObserver(fn func(link, counter int)) { c.backoffObs = fn }

// SetFireObserver installs an observer called whenever a link's counter
// reaches zero, with whether the link put a frame on the air.
func (c *Contention) SetFireObserver(fn func(link int, started bool)) { c.fireObs = fn }

// SetSenseObserver installs an observer mirroring every delivered ReachedOne
// carrier-sense callback.
func (c *Contention) SetSenseObserver(fn func(link int, busy bool)) { c.senseObs = fn }

// Settle processes entries that are already at zero or one at the current
// instant (fires zeros, senses ones) and arms the slot clock. Protocols call
// it once per interval after Add-ing the interval's full contender set, so
// that initial zero counters fire simultaneously (and collide) rather than
// in registration order.
func (c *Contention) Settle() {
	if c.graph != nil {
		c.settleGraph()
		return
	}
	if c.med.Busy() {
		return
	}
	c.processBoundary()
}

// Remove deregisters a link, cancelling its pending countdown.
func (c *Contention) Remove(link int) {
	if link < 0 || link >= len(c.entries) || !c.entries[link].active {
		return
	}
	c.entries[link] = contentionEntry{}
	c.active--
	if c.graph != nil {
		c.frozen[link] = false
		c.rearmGraph()
		return
	}
	if c.active == 0 {
		c.disarm()
	}
}

// Clear removes every entry and cancels the slot clock. Networks call it at
// interval end so no countdown leaks across the deadline.
func (c *Contention) Clear() {
	for i := range c.entries {
		c.entries[i] = contentionEntry{}
	}
	c.active = 0
	if c.graph != nil {
		for i := range c.frozen {
			c.frozen[i] = false
		}
		if c.eng.ClockArmed() {
			c.eng.DisarmClock()
		}
		return
	}
	c.disarm()
}

// Active returns the number of currently contending links.
func (c *Contention) Active() int { return c.active }

// Counter returns the current backoff counter of a contending link, and
// whether the link is contending at all. Elapsed-but-unmaterialized grid
// boundaries are accounted for, so the value matches a per-slot countdown.
func (c *Contention) Counter(link int) (int, bool) {
	if link < 0 || link >= len(c.entries) || !c.entries[link].active {
		return 0, false
	}
	if c.graph != nil {
		c.materialize(link, c.eng.Now())
		return c.entries[link].counter, true
	}
	c.sync()
	return c.entries[link].counter, true
}

// ChannelBusy implements medium.Listener: freeze the countdown.
func (c *Contention) ChannelBusy(sim.Time) { c.disarm() }

// ChannelIdle implements medium.Listener: resume the countdown.
func (c *Contention) ChannelIdle(sim.Time) { c.arm() }

func (c *Contention) arm() {
	if c.active == 0 || c.med.Busy() {
		return
	}
	if c.eng.ClockArmed() {
		// The entry set changed under an armed clock: keep the boundary grid
		// anchored at base and retarget to the earliest interesting boundary.
		c.sync()
		d := c.nextInteresting()
		at := c.base + sim.Time(d)*c.slot
		if at != c.target {
			c.eng.DisarmClock()
			c.eng.ArmClock(at)
		}
		c.skip, c.target = d, at
		return
	}
	now := c.eng.Now()
	c.base = now
	c.skip = c.nextInteresting()
	c.target = now + sim.Time(c.skip)*c.slot
	c.eng.ArmClock(c.target)
}

// sync materializes the grid boundaries that elapsed since base while the
// clock is armed: each was a pure decrement (skipping guarantees no fire or
// sense was due before the armed target), so applying them in bulk and
// advancing base keeps every counter exactly where a per-slot countdown
// would have left it.
func (c *Contention) sync() {
	if !c.eng.ClockArmed() {
		return
	}
	if k := int((c.eng.Now() - c.base) / c.slot); k > 0 {
		c.advance(k)
		c.base += sim.Time(k) * c.slot
		c.skip -= k
	}
}

// disarm freezes the countdown, materializing elapsed boundaries first.
func (c *Contention) disarm() {
	c.sync()
	c.eng.DisarmClock()
}

// advance applies k pure-decrement boundaries to every entry.
func (c *Contention) advance(k int) {
	for i := range c.entries {
		e := &c.entries[i]
		if e.active && e.counter > 0 {
			if e.counter -= k; e.counter < 0 {
				e.counter = 0
			}
		}
	}
}

// horizon returns how many grid boundaries ahead an entry's first observable
// boundary lies: firing (counter reaching zero) or delivering its
// carrier-sense callback (entering one with a live hook).
func horizon(e *contentionEntry) int {
	switch {
	case e.counter <= 1:
		return 1
	case e.contender.ReachedOne != nil:
		return e.counter - 1
	default:
		return e.counter
	}
}

// nextInteresting returns the minimum horizon over all active entries.
func (c *Contention) nextInteresting() int {
	d := int(^uint(0) >> 1)
	for i := range c.entries {
		e := &c.entries[i]
		if !e.active {
			continue
		}
		if j := horizon(e); j < d {
			d = j
		}
	}
	return d
}

func (c *Contention) onBoundary() {
	// The clock fired at target = base + skip·slot: apply the covered
	// decrements in one step, then classify. An entry that joined at counter
	// zero while the channel was busy fires at the first post-idle boundary;
	// it must not go negative.
	s := c.skip
	c.fired = c.fired[:0]
	c.sensed = c.sensed[:0]
	for link := range c.entries {
		e := &c.entries[link]
		if !e.active {
			continue
		}
		if e.counter > 0 {
			if e.counter -= s; e.counter < 0 {
				e.counter = 0
			}
		}
		switch e.counter {
		case 0:
			c.fired = append(c.fired, link)
		case 1:
			c.sensed = append(c.sensed, link)
		}
	}
	c.finishBoundary()
}

// processBoundary fires all entries at zero (simultaneously — overlapping
// transmissions collide on the medium), then delivers the carrier-sensing
// callbacks to entries at one, then re-arms the slot clock if the channel is
// still idle. Links are walked in index order, keeping runs deterministic.
func (c *Contention) processBoundary() {
	c.fired = c.fired[:0]
	c.sensed = c.sensed[:0]
	for link := range c.entries {
		if !c.entries[link].active {
			continue
		}
		switch c.entries[link].counter {
		case 0:
			c.fired = append(c.fired, link)
		case 1:
			c.sensed = append(c.sensed, link)
		}
	}
	c.finishBoundary()
}

// finishBoundary fires and senses the entries collected by onBoundary or
// processBoundary, then re-arms the clock if the channel stayed idle.
func (c *Contention) finishBoundary() {
	started := 0
	for _, link := range c.fired {
		fire := c.entries[link].contender.Fire
		c.entries[link] = contentionEntry{}
		c.active--
		ok := fire()
		if ok {
			started++
		}
		if c.fireObs != nil {
			c.fireObs(link, ok)
		}
	}
	busy := started > 0
	for _, link := range c.sensed {
		// Entries at one are sensed exactly once: entering one again is
		// impossible (counters only decrease), so mark by clearing the hook.
		if hook := c.entries[link].contender.ReachedOne; hook != nil {
			c.entries[link].contender.ReachedOne = nil
			hook(busy)
			if c.senseObs != nil {
				c.senseObs(link, busy)
			}
		}
	}
	if !busy {
		c.arm()
	}
	// If busy, the medium's ChannelBusy already disarmed us and ChannelIdle
	// will re-arm once the firing links release the channel.
}

// --- Conflict-graph (spatial-reuse) mode -----------------------------------
//
// With a non-complete conflict graph there is no single countdown grid:
// links in disjoint neighborhoods freeze and resume independently, so each
// entry carries its own grid anchor. The engine clock is armed at the global
// minimum over unfrozen entries of anchor + horizon·slot; everything the
// clock skips is, per link, a pure decrement applied in bulk when the link
// is next touched (boundary, freeze, or Counter read).

// materialize applies link's elapsed grid boundaries up to now: advances the
// anchor to the last boundary at or before now and bulk-decrements the
// counter. By construction of the armed target no fire or sense boundary is
// ever skipped, so the decrements are pure. Frozen links don't count down.
func (c *Contention) materialize(link int, now sim.Time) {
	if c.frozen[link] {
		return
	}
	e := &c.entries[link]
	if k := int((now - c.anchors[link]) / c.slot); k > 0 {
		c.anchors[link] += sim.Time(k) * c.slot
		if e.counter > 0 {
			if e.counter -= k; e.counter < 0 {
				e.counter = 0
			}
		}
	}
}

// rearmGraph points the engine clock at the earliest interesting boundary
// over all active unfrozen entries, or disarms it when there is none.
func (c *Contention) rearmGraph() {
	best := sim.Time(-1)
	for link := range c.entries {
		e := &c.entries[link]
		if !e.active || c.frozen[link] {
			continue
		}
		at := c.anchors[link] + sim.Time(horizon(e))*c.slot
		if best < 0 || at < best {
			best = at
		}
	}
	armed := c.eng.ClockArmed()
	if best < 0 {
		if armed {
			c.eng.DisarmClock()
		}
		return
	}
	if armed {
		if c.target == best {
			return
		}
		c.eng.DisarmClock()
	}
	c.target = best
	c.eng.ArmClock(best)
}

// onBoundaryGraph is the graph-mode clock callback: materialize every
// unfrozen entry and classify the ones whose own grid has a boundary at this
// exact instant (anchors land on now only then — entries that joined at now
// have k == 0 and wait for their first full slot).
func (c *Contention) onBoundaryGraph() {
	now := c.eng.Now()
	c.inBoundary = true
	c.fired = c.fired[:0]
	c.sensed = c.sensed[:0]
	for link := range c.entries {
		e := &c.entries[link]
		if !e.active || c.frozen[link] {
			continue
		}
		k := int((now - c.anchors[link]) / c.slot)
		if k <= 0 {
			continue
		}
		c.anchors[link] += sim.Time(k) * c.slot
		if e.counter > 0 {
			if e.counter -= k; e.counter < 0 {
				e.counter = 0
			}
		}
		if c.anchors[link] != now {
			continue
		}
		switch e.counter {
		case 0:
			c.fired = append(c.fired, link)
		case 1:
			c.sensed = append(c.sensed, link)
		}
	}
	c.finishBoundaryGraph()
}

// settleGraph is Settle under a conflict graph: entries already at zero or
// one fire or sense immediately, per neighborhood (a frozen link's
// neighborhood is busy; it keeps waiting).
func (c *Contention) settleGraph() {
	c.inBoundary = true
	c.fired = c.fired[:0]
	c.sensed = c.sensed[:0]
	for link := range c.entries {
		e := &c.entries[link]
		if !e.active || c.frozen[link] {
			continue
		}
		switch e.counter {
		case 0:
			c.fired = append(c.fired, link)
		case 1:
			c.sensed = append(c.sensed, link)
		}
	}
	c.finishBoundaryGraph()
}

// finishBoundaryGraph fires the collected entries in link order (conflicting
// same-instant fires collide on the medium; non-conflicting ones proceed
// concurrently), then delivers per-neighborhood carrier-sense callbacks, and
// re-arms the clock for whatever countdown remains.
func (c *Contention) finishBoundaryGraph() {
	for _, link := range c.fired {
		fire := c.entries[link].contender.Fire
		c.entries[link] = contentionEntry{}
		c.frozen[link] = false
		c.active--
		ok := fire()
		if c.fireObs != nil {
			c.fireObs(link, ok)
		}
	}
	for _, link := range c.sensed {
		e := &c.entries[link]
		if !e.active {
			continue
		}
		if hook := e.contender.ReachedOne; hook != nil {
			e.contender.ReachedOne = nil
			// Carrier sensing is local: the link hears only its own
			// neighborhood, not fires elsewhere in the graph.
			busy := c.med.BusyFor(link)
			hook(busy)
			if c.senseObs != nil {
				c.senseObs(link, busy)
			}
		}
	}
	c.inBoundary = false
	c.rearmGraph()
}

// LinkBusy implements medium.LinkListener: freeze link's countdown. Partial
// slot progress is lost, like the global freeze (sync floors elapsed slots).
func (c *Contention) LinkBusy(link int, at sim.Time) {
	if !c.entries[link].active || c.frozen[link] {
		return
	}
	c.materialize(link, at)
	c.frozen[link] = true
	if !c.inBoundary {
		c.rearmGraph()
	}
}

// LinkIdle implements medium.LinkListener: resume link's countdown on a
// fresh grid anchored at the idle instant, like the global resume re-anchors
// base at ChannelIdle.
func (c *Contention) LinkIdle(link int, at sim.Time) {
	if !c.entries[link].active || !c.frozen[link] {
		return
	}
	c.frozen[link] = false
	c.anchors[link] = at
	if !c.inBoundary {
		c.rearmGraph()
	}
}

var _ medium.Listener = (*Contention)(nil)
var _ medium.LinkListener = (*Contention)(nil)
