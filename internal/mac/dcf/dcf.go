// Package dcf implements an 802.11-style Distributed Coordination Function
// baseline: per-packet CSMA/CA with binary exponential backoff. It is not
// one of the paper's plotted baselines, but the paper's introduction leans
// on Bianchi's analysis of exactly this scheme — collision probability grows
// with network size and the resulting capacity loss is significant even at
// ten links — to motivate the collision-free design of the DP protocol.
// This package makes that comparison runnable as an ablation.
package dcf

import (
	"fmt"

	"rtmac/internal/mac"
	"rtmac/internal/sim"
)

// Config sets the backoff window evolution.
type Config struct {
	// CWMin is the initial contention window (802.11a: 16).
	CWMin int
	// CWMax caps the window after repeated failures (802.11a: 1024).
	CWMax int
}

// DefaultConfig returns the 802.11a values.
func DefaultConfig() Config { return Config{CWMin: 16, CWMax: 1024} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CWMin < 1 {
		return fmt.Errorf("dcf: CWMin %d must be at least 1", c.CWMin)
	}
	if c.CWMax < c.CWMin {
		return fmt.Errorf("dcf: CWMax %d below CWMin %d", c.CWMax, c.CWMin)
	}
	return nil
}

// Protocol is the DCF policy. Contention-window state persists across
// intervals, as a real station's would.
type Protocol struct {
	cfg Config
	cw  []int // current window per link
	// rng caches the backoff stream; fireFns/doneFns are per-link callbacks
	// built once against the stable interval context, so entering contention
	// and chaining retransmissions allocate nothing.
	rng     *sim.RNG
	ctx     *mac.Context
	fireFns []func() bool
	doneFns []func(delivered bool)
}

// New validates cfg and returns a DCF instance for n links.
func New(n int, cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("dcf: need at least 1 link, got %d", n)
	}
	p := &Protocol{cfg: cfg, cw: make([]int, n)}
	for i := range p.cw {
		p.cw[i] = cfg.CWMin
	}
	return p, nil
}

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "dcf" }

// BeginInterval implements mac.Protocol: every backlogged link joins the
// slotted contention with a fresh uniform draw from its current window.
func (p *Protocol) BeginInterval(ctx *mac.Context) {
	if p.fireFns == nil {
		n := ctx.Links()
		p.rng = ctx.Eng.RNG("dcf")
		p.fireFns = make([]func() bool, n)
		p.doneFns = make([]func(delivered bool), n)
		for i := 0; i < n; i++ {
			link := i
			p.fireFns[link] = func() bool { return p.fire(p.ctx, link) }
			p.doneFns[link] = func(delivered bool) {
				if delivered {
					p.cw[link] = p.cfg.CWMin
				} else if p.cw[link]*2 <= p.cfg.CWMax {
					p.cw[link] *= 2
				}
				ctx := p.ctx
				if ctx.Pending(link) > 0 && ctx.FitsData() {
					p.enter(ctx, link)
				}
			}
		}
	}
	p.ctx = ctx
	for link := 0; link < ctx.Links(); link++ {
		if ctx.Pending(link) > 0 {
			p.enter(ctx, link)
		}
	}
	ctx.Contention().Settle()
}

// EndInterval implements mac.Protocol. Residual backoff counters are
// discarded with the interval's flushed packets (the network clears the
// coordinator); the exponential window state survives.
func (p *Protocol) EndInterval(*mac.Context) {}

// enter registers link with a fresh draw from [0, cw).
func (p *Protocol) enter(ctx *mac.Context, link int) {
	draw := p.rng.IntN(p.cw[link])
	ctx.Contention().Add(link, draw, mac.Contender{Fire: p.fireFns[link]})
}

// fire transmits one packet; the outcome drives the window (double on
// failure — a station cannot distinguish collision from channel loss, both
// are a missing ACK — reset on success), and the link re-enters contention
// while it remains backlogged.
func (p *Protocol) fire(ctx *mac.Context, link int) bool {
	return ctx.TransmitData(link, p.doneFns[link])
}

// Window returns link's current contention window, for tests and reports.
func (p *Protocol) Window(link int) int { return p.cw[link] }

var _ mac.Protocol = (*Protocol)(nil)
