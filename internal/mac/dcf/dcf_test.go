package dcf

import (
	"testing"

	"rtmac/internal/arrival"
	"rtmac/internal/mac"
	"rtmac/internal/metrics"
	"rtmac/internal/phy"
)

func fastProfile() phy.Profile {
	return phy.Profile{Name: "test", Slot: 1, DataAirtime: 10, EmptyAirtime: 2, Interval: 400}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, DefaultConfig()); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := New(2, Config{CWMin: 0, CWMax: 16}); err == nil {
		t.Error("CWMin 0 accepted")
	}
	if _, err := New(2, Config{CWMin: 32, CWMax: 16}); err == nil {
		t.Error("CWMax < CWMin accepted")
	}
}

func runDCF(t *testing.T, seed uint64, n int, p float64, perLink int, q float64,
	intervals int) (*mac.Network, *metrics.Collector, *Protocol) {
	t.Helper()
	prot, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := make([]float64, n)
	probs := make([]float64, n)
	for i := range req {
		req[i] = q
		probs[i] = p
	}
	col, err := metrics.NewCollector(req)
	if err != nil {
		t.Fatal(err)
	}
	av, err := arrival.Uniform(n, arrival.Deterministic{N: perLink})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        seed,
		Profile:     fastProfile(),
		SuccessProb: probs,
		Arrivals:    av,
		Required:    req,
		Protocol:    prot,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(intervals); err != nil {
		t.Fatal(err)
	}
	return nw, col, prot
}

func TestDCFDeliversLightLoad(t *testing.T) {
	_, col, _ := runDCF(t, 1, 2, 1, 1, 0.95, 500)
	if d := col.TotalDeficiency(); d > 0.02 {
		t.Fatalf("light-load deficiency %v", d)
	}
}

func TestDCFCollisionRateGrowsWithNetworkSize(t *testing.T) {
	// Bianchi's observation, the paper's motivation for collision-free
	// backoff: more stations, higher collision share.
	collisionShare := func(n int) float64 {
		nw, _, _ := runDCF(t, 7, n, 1, 2, 0, 200)
		st := nw.Medium().Stats()
		if st.Transmissions == 0 {
			t.Fatal("no transmissions")
		}
		return float64(st.Collisions) / float64(st.Transmissions)
	}
	small := collisionShare(2)
	large := collisionShare(16)
	if large <= small {
		t.Fatalf("collision share did not grow with size: n=2 gives %v, n=16 gives %v",
			small, large)
	}
	if large == 0 {
		t.Fatal("16 contending stations never collided")
	}
}

func TestDCFWindowDoublesOnFailureAndResetsOnSuccess(t *testing.T) {
	// With p = 1 and a single link there are no failures: the window must
	// stay at CWMin.
	_, _, prot := runDCF(t, 3, 1, 1, 2, 0, 50)
	if got := prot.Window(0); got != DefaultConfig().CWMin {
		t.Fatalf("lossless single station window %d, want CWMin", got)
	}
	// With p = 0.05 the window of a retrying station must have grown beyond
	// CWMin at some point; since success resets it, probe right after a run
	// where the last attempts almost surely failed.
	_, _, lossy := runDCF(t, 4, 1, 0.05, 6, 0, 30)
	if got := lossy.Window(0); got <= DefaultConfig().CWMin {
		t.Fatalf("heavily lossy station window %d, want > CWMin", got)
	}
}

func TestDCFWindowCapped(t *testing.T) {
	cfg := DefaultConfig()
	prot, err := New(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force many failures through the exported state by simulating the
	// update rule directly: Window never exceeds CWMax.
	for i := 0; i < 20; i++ {
		if prot.cw[0]*2 <= cfg.CWMax {
			prot.cw[0] *= 2
		}
	}
	if prot.Window(0) > cfg.CWMax {
		t.Fatalf("window %d exceeds CWMax %d", prot.Window(0), cfg.CWMax)
	}
}
