package tdma

import (
	"testing"

	"rtmac/internal/arrival"
	"rtmac/internal/mac"
	"rtmac/internal/mac/ldf"
	"rtmac/internal/metrics"
	"rtmac/internal/phy"
)

func fastProfile() phy.Profile {
	return phy.Profile{Name: "test", Slot: 1, DataAirtime: 10, EmptyAirtime: 2, Interval: 100}
}

func run(t *testing.T, seed uint64, prot mac.Protocol, probs []float64,
	av arrival.VectorProcess, q []float64, intervals int) (*mac.Network, *metrics.Collector) {
	t.Helper()
	col, err := metrics.NewCollector(q)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        seed,
		Profile:     fastProfile(),
		SuccessProb: probs,
		Arrivals:    av,
		Required:    q,
		Protocol:    prot,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(intervals); err != nil {
		t.Fatal(err)
	}
	return nw, col
}

func TestSymmetricReliableLoadFulfilled(t *testing.T) {
	// 2 links, 10 slots: 5 each; 3 packets per link at p = 1 fit easily.
	av, _ := arrival.Uniform(2, arrival.Deterministic{N: 3})
	nw, col := run(t, 1, New(true), []float64{1, 1}, av, []float64{3, 3}, 500)
	if d := col.TotalDeficiency(); d > 0.001 {
		t.Fatalf("deficiency %v on an easy symmetric load", d)
	}
	if nw.Medium().Stats().Collisions != 0 {
		t.Fatal("TDMA collided")
	}
}

func TestFixedAllocationWastesUnderAsymmetry(t *testing.T) {
	// Link 0 has p = 0.4 and needs ~2.5 attempts per packet; link 1 has
	// p = 1 and 1 packet. TDMA's even 5/5 split cannot move link 1's idle
	// slots to link 0, while LDF reallocates freely.
	av, err := arrival.NewIndependent(arrival.Deterministic{N: 3}, arrival.Deterministic{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	probs := []float64{0.4, 1}
	q := []float64{2.7, 1} // 90% of link 0's arrivals, all of link 1's
	_, tdmaCol := run(t, 2, New(true), probs, av, q, 3000)
	_, ldfCol := run(t, 2, ldf.NewLDF(), probs, av, q, 3000)
	tdmaD, ldfD := tdmaCol.TotalDeficiency(), ldfCol.TotalDeficiency()
	if ldfD > 0.05 {
		t.Fatalf("LDF deficiency %v, expected ≈ 0 (test assumption)", ldfD)
	}
	if tdmaD < ldfD+0.2 {
		t.Fatalf("TDMA deficiency %v not clearly above LDF's %v", tdmaD, ldfD)
	}
}

func TestRotationSpreadsRemainderSlots(t *testing.T) {
	// 3 links, 10 slots: 4/3/3 with the extra slot rotating. Saturate all
	// links; with rotation, long-run throughputs equalize.
	av, _ := arrival.Uniform(3, arrival.Deterministic{N: 6})
	_, col := run(t, 3, New(true), []float64{1, 1, 1}, av, []float64{2, 2, 2}, 900)
	t0, t1, t2 := col.Throughput(0), col.Throughput(1), col.Throughput(2)
	for _, tp := range []float64{t0, t1, t2} {
		if tp < 3.2 || tp > 3.5 {
			t.Fatalf("rotated throughputs not equalized near 10/3: %v %v %v", t0, t1, t2)
		}
	}
	// Without rotation the first link permanently keeps the extra slot.
	_, fixed := run(t, 3, New(false), []float64{1, 1, 1}, av, []float64{2, 2, 2}, 900)
	if !(fixed.Throughput(0) > fixed.Throughput(2)) {
		t.Fatalf("fixed allocation did not favor link 0: %v vs %v",
			fixed.Throughput(0), fixed.Throughput(2))
	}
}

func TestIdleSlotsBurnTime(t *testing.T) {
	// Only link 0 has traffic; link 1's 5 slots idle away, capping link 0
	// at its own 5-slot share even though the channel is free.
	av, err := arrival.NewIndependent(arrival.Deterministic{N: 8}, arrival.Deterministic{N: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, col := run(t, 4, New(false), []float64{1, 1}, av, []float64{8, 0}, 400)
	if got := col.Throughput(0); got > 5.01 {
		t.Fatalf("link 0 delivered %v per interval, beyond its 5-slot TDMA share", got)
	}
	if got := col.Throughput(0); got < 4.99 {
		t.Fatalf("link 0 delivered %v per interval, below its full share", got)
	}
}
