// Package tdma implements a static time-division baseline: every interval's
// transmission slots are split among links in fixed round-robin order,
// irrespective of debts, arrivals, or outcomes. It is the zero-adaptivity
// reference point: collision-free like the DP protocol, but with none of
// its debt responsiveness — under asymmetric channels or bursty arrivals
// the fixed allocation wastes exactly the capacity the debt-driven policies
// recover.
package tdma

import (
	"fmt"

	"rtmac/internal/mac"
	"rtmac/internal/sim"
)

// Protocol is the static TDMA policy. The zero value is invalid; use New.
type Protocol struct {
	// rotate shifts the round-robin start each interval so leftover slots
	// (when slots % N != 0) spread fairly.
	rotate bool
	// Per-interval scratch.
	alloc []int
	order []int
	timer *sim.Timer
	k     int64
	// ctx/serveFn/timerFn cache the interval context (stable across
	// intervals) and the two continuation callbacks, keeping the serving
	// chain allocation-free.
	ctx     *mac.Context
	serveFn func(bool)
	timerFn func()
}

// New returns a TDMA instance. rotate spreads remainder slots across links
// over successive intervals.
func New(rotate bool) *Protocol {
	return &Protocol{rotate: rotate}
}

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "tdma" }

// BeginInterval implements mac.Protocol: divide the interval's slots evenly
// and serve each link's share in order.
func (p *Protocol) BeginInterval(ctx *mac.Context) {
	n := ctx.Links()
	if p.serveFn == nil {
		p.serveFn = func(bool) { p.serveNext(p.ctx) }
		p.timerFn = func() {
			p.timer = nil
			p.serveNext(p.ctx)
		}
	}
	p.ctx = ctx
	if cap(p.alloc) < n {
		p.alloc = make([]int, n)
		p.order = make([]int, n)
	}
	p.alloc = p.alloc[:n]
	p.order = p.order[:n]
	slots := ctx.Profile.SlotsPerInterval()
	base := slots / n
	extra := slots % n
	start := 0
	if p.rotate {
		start = int(p.k % int64(n))
	}
	for i := 0; i < n; i++ {
		link := (start + i) % n
		p.order[i] = link
		p.alloc[link] = base
		if i < extra {
			p.alloc[link]++
		}
	}
	p.k++
	p.serveNext(ctx)
}

// serveNext consumes the allocation in order; slots whose owner has nothing
// to send idle away, exactly as in a hardware TDMA frame.
func (p *Protocol) serveNext(ctx *mac.Context) {
	for _, link := range p.order {
		if p.alloc[link] == 0 {
			continue
		}
		p.alloc[link]--
		if ctx.Pending(link) > 0 {
			if !ctx.TransmitData(link, p.serveFn) {
				return
			}
			return
		}
		if ctx.Remaining() < ctx.Profile.DataAirtime {
			return
		}
		p.timer = ctx.Eng.After(ctx.Profile.DataAirtime, p.timerFn)
		return
	}
}

// EndInterval implements mac.Protocol.
func (p *Protocol) EndInterval(ctx *mac.Context) {
	if p.timer != nil {
		ctx.Eng.Cancel(p.timer)
		p.timer = nil
	}
	for i := range p.alloc {
		p.alloc[i] = 0
	}
}

// String aids debugging.
func (p *Protocol) String() string {
	return fmt.Sprintf("tdma(rotate=%v)", p.rotate)
}

var _ mac.Protocol = (*Protocol)(nil)
