// Package tdma implements a static time-division baseline: every interval's
// transmission slots are split among links in fixed round-robin order,
// irrespective of debts, arrivals, or outcomes. It is the zero-adaptivity
// reference point: collision-free like the DP protocol, but with none of
// its debt responsiveness — under asymmetric channels or bursty arrivals
// the fixed allocation wastes exactly the capacity the debt-driven policies
// recover.
package tdma

import (
	"fmt"

	"rtmac/internal/mac"
	"rtmac/internal/sim"
)

// Protocol is the static TDMA policy. The zero value is invalid; use New.
type Protocol struct {
	// rotate shifts the round-robin start each interval so leftover slots
	// (when slots % N != 0) spread fairly.
	rotate bool
	// Per-interval scratch.
	alloc []int
	order []int
	timer *sim.Timer
	k     int64
	// ctx/serveFn/timerFn cache the interval context (stable across
	// intervals) and the two continuation callbacks, keeping the serving
	// chain allocation-free.
	ctx     *mac.Context
	serveFn func(bool)
	timerFn func()
	// Graph mode: on a non-complete conflict graph the frame is divided
	// among color classes of a greedy coloring instead of individual links —
	// all links of the active color transmit simultaneously (they are
	// pairwise non-conflicting by construction), the TDMA analogue of
	// spatial reuse. colors/numColors are computed once per network.
	graphMode   bool
	colors      []int
	numColors   int
	outstanding int
	groupDoneFn func(bool)
}

// New returns a TDMA instance. rotate spreads remainder slots across links
// over successive intervals.
func New(rotate bool) *Protocol {
	return &Protocol{rotate: rotate}
}

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "tdma" }

// BeginInterval implements mac.Protocol: divide the interval's slots evenly
// and serve each link's share in order.
func (p *Protocol) BeginInterval(ctx *mac.Context) {
	n := ctx.Links()
	if p.serveFn == nil {
		p.serveFn = func(bool) { p.serveNext(p.ctx) }
		p.timerFn = func() {
			p.timer = nil
			if p.graphMode {
				p.serveNextGroup(p.ctx)
			} else {
				p.serveNext(p.ctx)
			}
		}
		p.groupDoneFn = func(bool) {
			p.outstanding--
			if p.outstanding == 0 {
				p.serveNextGroup(p.ctx)
			}
		}
	}
	p.ctx = ctx
	if cap(p.alloc) < n {
		p.alloc = make([]int, n)
		p.order = make([]int, n)
	}
	if g := ctx.Med.Graph(); g != nil && !g.Complete() {
		p.beginGraph(ctx)
		return
	}
	p.alloc = p.alloc[:n]
	p.order = p.order[:n]
	slots := ctx.Profile.SlotsPerInterval()
	base := slots / n
	extra := slots % n
	start := 0
	if p.rotate {
		start = int(p.k % int64(n))
	}
	for i := 0; i < n; i++ {
		link := (start + i) % n
		p.order[i] = link
		p.alloc[link] = base
		if i < extra {
			p.alloc[link]++
		}
	}
	p.k++
	p.serveNext(ctx)
}

// beginGraph divides the frame among the color classes of a greedy coloring
// of the conflict graph: each class gets slots/numColors slots (remainders
// rotate like the link-level remainders), and within a class every link with
// pending traffic transmits concurrently.
func (p *Protocol) beginGraph(ctx *mac.Context) {
	p.graphMode = true
	if p.colors == nil {
		p.colorize(ctx)
	}
	m := p.numColors
	p.alloc = p.alloc[:m]
	p.order = p.order[:m]
	slots := ctx.Profile.SlotsPerInterval()
	base := slots / m
	extra := slots % m
	start := 0
	if p.rotate {
		start = int(p.k % int64(m))
	}
	for i := 0; i < m; i++ {
		color := (start + i) % m
		p.order[i] = color
		p.alloc[color] = base
		if i < extra {
			p.alloc[color]++
		}
	}
	p.k++
	p.outstanding = 0
	p.serveNextGroup(ctx)
}

// colorize computes a greedy coloring by link index: each link takes the
// smallest color unused by its already-colored conflicting neighbors. The
// graph is fixed for a network's lifetime, so this runs once.
func (p *Protocol) colorize(ctx *mac.Context) {
	n := ctx.Links()
	g := ctx.Med.Graph()
	p.colors = make([]int, n)
	used := make([]bool, n)
	p.numColors = 0
	for link := 0; link < n; link++ {
		for j := 0; j < link; j++ {
			if g.Conflicts(link, j) {
				used[p.colors[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		p.colors[link] = c
		if c+1 > p.numColors {
			p.numColors = c + 1
		}
		for j := range used[:p.numColors] {
			used[j] = false
		}
	}
}

// serveNextGroup consumes one color-class slot: every link of the active
// color with pending packets starts a data exchange; the group's completions
// (all at the same instant — equal airtimes started together) advance to the
// next slot. Idle classes burn a slot's airtime exactly like serveNext's
// empty link slots.
func (p *Protocol) serveNextGroup(ctx *mac.Context) {
	for _, color := range p.order {
		if p.alloc[color] == 0 {
			continue
		}
		p.alloc[color]--
		if !ctx.FitsData() {
			return
		}
		started := 0
		for link, c := range p.colors {
			if c == color && ctx.Pending(link) > 0 {
				if ctx.TransmitData(link, p.groupDoneFn) {
					started++
				}
			}
		}
		if started > 0 {
			p.outstanding = started
			return
		}
		p.timer = ctx.Eng.After(ctx.Profile.DataAirtime, p.timerFn)
		return
	}
}

// serveNext consumes the allocation in order; slots whose owner has nothing
// to send idle away, exactly as in a hardware TDMA frame.
func (p *Protocol) serveNext(ctx *mac.Context) {
	for _, link := range p.order {
		if p.alloc[link] == 0 {
			continue
		}
		p.alloc[link]--
		if ctx.Pending(link) > 0 {
			if !ctx.TransmitData(link, p.serveFn) {
				return
			}
			return
		}
		if ctx.Remaining() < ctx.Profile.DataAirtime {
			return
		}
		p.timer = ctx.Eng.After(ctx.Profile.DataAirtime, p.timerFn)
		return
	}
}

// EndInterval implements mac.Protocol.
func (p *Protocol) EndInterval(ctx *mac.Context) {
	if p.timer != nil {
		ctx.Eng.Cancel(p.timer)
		p.timer = nil
	}
	// Orphan any group completions still landing at the interval boundary:
	// with outstanding at zero and the allocation cleared, a late
	// groupDoneFn decrements past zero and serveNextGroup finds nothing.
	p.outstanding = 0
	for i := range p.alloc {
		p.alloc[i] = 0
	}
}

// String aids debugging.
func (p *Protocol) String() string {
	return fmt.Sprintf("tdma(rotate=%v)", p.rotate)
}

var _ mac.Protocol = (*Protocol)(nil)
