package mac

import (
	"fmt"
	"time"

	"rtmac/internal/arrival"
	"rtmac/internal/debt"
	"rtmac/internal/journey"
	"rtmac/internal/medium"
	"rtmac/internal/perm"
	"rtmac/internal/phy"
	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

// Protocol is a medium-access policy driven by the network's interval loop.
// BeginInterval is invoked at each interval's start with fresh arrivals
// already in the buffers; the protocol schedules its transmissions through
// the context (and the Contention coordinator, if it uses one).
// EndInterval is invoked at the deadline, after all channel activity for the
// interval has finished, so the protocol can commit state (e.g. priority
// swaps) and cancel whatever it scheduled.
type Protocol interface {
	Name() string
	BeginInterval(ctx *Context)
	EndInterval(ctx *Context)
}

// Observer receives a copy of per-interval results as the simulation runs;
// metrics collectors implement it.
type Observer interface {
	// ObserveInterval is called once per completed interval with the
	// arrival and service vectors of that interval. The slices are reused
	// between calls; observers must copy what they keep.
	ObserveInterval(k int64, arrivals, served []int)
}

// NetworkConfig assembles one simulated network (N, A, T, p) plus the policy
// under test.
type NetworkConfig struct {
	// Seed drives every random stream in the simulation.
	Seed uint64
	// Profile sets slot, airtime and interval durations.
	Profile phy.Profile
	// SuccessProb is the per-link delivery probability vector p (the
	// paper's static channel model). Leave nil when Channel is set.
	SuccessProb []float64
	// Channel, when non-nil, replaces the static model with a time-varying
	// one (e.g. medium.GilbertElliott); mutually exclusive with
	// SuccessProb. The network size is then taken from Required.
	Channel medium.Model
	// ChannelFactory builds a time-varying model bound to the network's
	// own engine (models needing the engine's deterministic RNG streams
	// cannot be constructed before the network exists). Mutually exclusive
	// with SuccessProb and Channel.
	ChannelFactory func(eng *sim.Engine, links int) (medium.Model, error)
	// Conflicts, when non-nil, is the interference graph governing which
	// links collide; nil means the paper's fully-interfering channel
	// (complete graph). Non-complete graphs enable spatial reuse.
	Conflicts *medium.Graph
	// Arrivals generates A(k).
	Arrivals arrival.VectorProcess
	// Required is the per-link timely-throughput requirement vector q
	// (packets per interval).
	Required []float64
	// Protocol is the policy under test.
	Protocol Protocol
	// Observers receive per-interval results.
	Observers []Observer
	// Telemetry, when non-nil, is the metric registry the network and its
	// medium publish into; otherwise the network creates a private one.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives the structured event stream from the
	// start of the run (it can also be attached later with SetEventSink).
	Events telemetry.Sink
}

// Network runs one protocol over the interval structure of the paper.
type Network struct {
	cfg        NetworkConfig
	eng        *sim.Engine
	med        *medium.Medium
	ledger     *debt.Ledger
	ctx        *Context
	cont       *Contention
	arrivals   []int
	intervals  int64
	reg        *telemetry.Registry
	inst       *instrumentation
	txTraced   bool
	prio       priorityCarrier
	check      func() error
	arrivalRNG *sim.RNG
	// journeys, when set, is the packet-journey tracer; jTraced guards its
	// one-time medium trace registration, jPrio is its reusable σ snapshot
	// and debtFn the cached ledger method value (so the per-interval hand-off
	// allocates nothing).
	journeys *journey.Tracer
	jTraced  bool
	jPrio    perm.Permutation
	debtFn   func(link int) float64
	// beginFn/endFn are the cached RunIntervals callbacks.
	beginFn, endFn func(int) error
	// wallBegin/wallEnd bracket each interval in wall-clock time for the
	// slot-budget watchdog (internal/health); nil unless attached.
	wallBegin func()
	wallEnd   func(k int64, at sim.Time)
}

// NewNetwork validates the configuration and assembles the simulation.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("mac: no protocol")
	}
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("mac: no arrival process")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("mac: %w", err)
	}
	modelSources := 0
	for _, set := range []bool{cfg.SuccessProb != nil, cfg.Channel != nil, cfg.ChannelFactory != nil} {
		if set {
			modelSources++
		}
	}
	if modelSources > 1 {
		return nil, fmt.Errorf("mac: set exactly one of SuccessProb, Channel, ChannelFactory")
	}
	var n int
	if cfg.SuccessProb != nil {
		n = len(cfg.SuccessProb)
	} else {
		n = len(cfg.Required)
	}
	if n == 0 {
		return nil, fmt.Errorf("mac: no links configured")
	}
	if cfg.Arrivals.Links() != n {
		return nil, fmt.Errorf("mac: arrival process covers %d links, medium has %d",
			cfg.Arrivals.Links(), n)
	}
	if len(cfg.Required) != n {
		return nil, fmt.Errorf("mac: requirement vector has %d links, medium has %d",
			len(cfg.Required), n)
	}
	eng := sim.NewEngine(cfg.Seed)
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	var (
		med *medium.Medium
		err error
	)
	switch {
	case cfg.ChannelFactory != nil:
		var model medium.Model
		model, err = cfg.ChannelFactory(eng, n)
		if err != nil {
			return nil, fmt.Errorf("mac: channel factory: %w", err)
		}
		med, err = medium.NewWithModel(eng, n, model, medium.WithRegistry(reg), medium.WithGraph(cfg.Conflicts))
	case cfg.Channel != nil:
		med, err = medium.NewWithModel(eng, n, cfg.Channel, medium.WithRegistry(reg), medium.WithGraph(cfg.Conflicts))
	default:
		med, err = medium.New(eng, cfg.SuccessProb, medium.WithRegistry(reg), medium.WithGraph(cfg.Conflicts))
	}
	if err != nil {
		return nil, fmt.Errorf("mac: %w", err)
	}
	ledger, err := debt.NewLedger(cfg.Required)
	if err != nil {
		return nil, fmt.Errorf("mac: %w", err)
	}
	cont, err := NewContention(eng, med, cfg.Profile.Slot)
	if err != nil {
		return nil, fmt.Errorf("mac: %w", err)
	}
	ctx := newContext(eng, med, cfg.Profile, ledger)
	ctx.cont = cont
	nw := &Network{
		cfg:      cfg,
		eng:      eng,
		med:      med,
		ledger:   ledger,
		ctx:      ctx,
		cont:     cont,
		arrivals: make([]int, n),
		reg:      reg,
		inst:     newInstrumentation(reg),
	}
	cont.SetBackoffHistogram(nw.inst.backoffHist)
	ledger.SetUpdateHook(func(k int64, debts []float64) {
		nw.inst.observeDebts(k, nw.ctx.End, debts)
	})
	if carrier, ok := cfg.Protocol.(swapHookCarrier); ok {
		carrier.SetSwapHook(func(k int64, at sim.Time, pos, down, up int, accepted bool) {
			nw.inst.observeSwap(k, at, pos, down, up, accepted)
			if jt := nw.journeys; jt != nil {
				jt.ObserveSwap(down, up, accepted)
			}
		})
	}
	if carrier, ok := cfg.Protocol.(priorityCarrier); ok {
		nw.prio = carrier
	}
	cont.SetBackoffObserver(func(link, counter int) {
		if jt := nw.journeys; jt != nil {
			jt.ObserveRound(link, counter)
		}
		sink := nw.inst.sink
		if sink == nil {
			return
		}
		nw.inst.backoffFields["slots"] = float64(counter)
		sink.Emit(telemetry.Event{
			K: nw.ctx.K, At: nw.eng.Now(), Link: link, Kind: telemetry.EventBackoff,
			Fields: nw.inst.backoffFields,
		})
	})
	nw.arrivalRNG = eng.RNG("arrivals")
	// The interval callbacks handed to Engine.RunIntervals are built once so
	// Run stays allocation-free per call.
	nw.beginFn = func(int) error { return nw.beginInterval() }
	nw.endFn = func(int) error { return nw.endInterval() }
	if cfg.Events != nil {
		nw.SetEventSink(cfg.Events)
	}
	return nw, nil
}

// SetIntervalCheck installs a hook consulted at the end of every completed
// interval; a non-nil error aborts Run with it. The runtime monitor's Strict
// mode uses it to fail the run at the end of the first violating interval
// instead of letting a broken simulation grind on.
func (nw *Network) SetIntervalCheck(fn func() error) { nw.check = fn }

// SetWallClockHooks installs wall-clock brackets around every simulated
// interval: begin runs first thing in beginInterval, end runs last thing in
// endInterval with the interval's index and simulated end time. The
// slot-budget watchdog uses them to compare wall-clock cost per interval
// against a budget. Either hook may be nil; with both nil the hot path
// retains its two nil checks and nothing else.
func (nw *Network) SetWallClockHooks(begin func(), end func(k int64, at sim.Time)) {
	nw.wallBegin = begin
	nw.wallEnd = end
}

// Telemetry returns the registry the network's metrics live in.
func (nw *Network) Telemetry() *telemetry.Registry { return nw.reg }

// SetEventSink attaches (or replaces) the structured event stream. Call it
// before Run; events from intervals already simulated are not replayed. A
// nil sink detaches the stream.
func (nw *Network) SetEventSink(s telemetry.Sink) {
	nw.inst.sink = s
	if s != nil && !nw.txTraced {
		// Per-transmission events ride the medium's existing trace hook, the
		// same hook packet recorders use, so the medium needs no second
		// instrumentation path. Registered once; the closure reads the
		// current sink so replacing it needs no re-registration.
		nw.txTraced = true
		nw.med.AddTrace(func(tx medium.Transmission, outcome medium.Outcome) {
			sink := nw.inst.sink
			if sink == nil {
				return
			}
			empty := 0.0
			if tx.Empty {
				empty = 1
			}
			nw.inst.txFields["dur"] = float64(tx.End - tx.Start)
			nw.inst.txFields["empty"] = empty
			nw.inst.txFields["outcome"] = float64(outcome)
			sink.Emit(telemetry.Event{
				K: nw.ctx.K, At: tx.End, Link: tx.Link, Kind: telemetry.EventTx,
				Fields: nw.inst.txFields,
			})
		})
	}
}

// SetJourneyTracer attaches (or, with nil, detaches) the packet-journey
// tracer. Call it before Run; intervals already simulated are not replayed.
// With no tracer attached every hook stays a nil check, preserving the
// allocation-free interval hot path.
func (nw *Network) SetJourneyTracer(t *journey.Tracer) error {
	if t != nil && t.Links() != nw.med.Links() {
		return fmt.Errorf("mac: journey tracer covers %d links, network has %d",
			t.Links(), nw.med.Links())
	}
	nw.journeys = t
	nw.ctx.jt = t
	if t == nil {
		return nil
	}
	if nw.debtFn == nil {
		nw.debtFn = nw.ledger.Debt
	}
	nw.cont.SetFireObserver(func(link int, started bool) {
		if jt := nw.journeys; jt != nil {
			jt.ObserveFire(link, started)
		}
	})
	nw.cont.SetSenseObserver(func(link int, busy bool) {
		if jt := nw.journeys; jt != nil {
			jt.ObserveSense(link, busy)
		}
	})
	if !nw.jTraced {
		// Journeys ride the medium's trace hook, which runs before the
		// context's delivery bookkeeping — so the link's served count at
		// trace time is exactly the head-of-line packet index the
		// transmission carried. Registered once; the closure reads the
		// current tracer so replacing it needs no re-registration.
		nw.jTraced = true
		nw.med.AddTrace(func(tx medium.Transmission, outcome medium.Outcome) {
			if jt := nw.journeys; jt != nil {
				jt.ObserveTx(tx.Link, nw.ctx.served[tx.Link], tx.Start, tx.End, tx.Empty, outcome)
			}
		})
	}
	return nil
}

// JourneyTracer returns the attached packet-journey tracer, or nil.
func (nw *Network) JourneyTracer() *journey.Tracer { return nw.journeys }

// Links returns N.
func (nw *Network) Links() int { return nw.med.Links() }

// Engine exposes the simulation engine (e.g. for protocols needing extra
// random streams in tests).
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Medium exposes the shared channel.
func (nw *Network) Medium() *medium.Medium { return nw.med }

// Ledger exposes the delivery-debt ledger.
func (nw *Network) Ledger() *debt.Ledger { return nw.ledger }

// Contention exposes the slotted-backoff coordinator protocols may use.
func (nw *Network) Contention() *Contention { return nw.cont }

// Intervals returns the number of completed intervals.
func (nw *Network) Intervals() int64 { return nw.intervals }

// Run simulates the given number of additional intervals. It can be called
// repeatedly to continue the same simulation. The interval loop itself is
// the engine's batched RunIntervals advance; Run stays allocation-free per
// call so benchmark and hot-loop callers can invoke it per interval.
func (nw *Network) Run(intervals int) error {
	if intervals < 0 {
		return fmt.Errorf("mac: negative interval count %d", intervals)
	}
	wallStart := time.Now()
	err := nw.eng.RunIntervals(nw.cfg.Profile.Interval, intervals, nw.beginFn, nw.endFn)
	if elapsed := time.Since(wallStart).Seconds(); elapsed > 0 && intervals > 0 {
		nw.inst.intervalsPerS.Set(float64(intervals) / elapsed)
	}
	return err
}

// beginInterval opens interval k = nw.intervals: sample arrivals, reset the
// context, hand control to the protocol.
func (nw *Network) beginInterval() error {
	if nw.wallBegin != nil {
		nw.wallBegin()
	}
	k := nw.intervals
	start := sim.Time(k) * nw.cfg.Profile.Interval
	end := start + nw.cfg.Profile.Interval
	if nw.eng.Now() != start {
		return fmt.Errorf("mac: interval %d starts at %v but clock is at %v",
			k, start, nw.eng.Now())
	}
	nw.cfg.Arrivals.Sample(nw.arrivalRNG, nw.arrivals)
	nw.ctx.beginInterval(k, start, end, nw.arrivals)
	if k == 0 {
		nw.emitConflicts()
	}
	if jt := nw.journeys; jt != nil {
		jt.BeginInterval(k, start, end, nw.arrivals)
		if nw.prio != nil {
			// σ at interval begin is the priority vector held *during* the
			// interval (swaps commit at its end).
			prio := nw.jPrio
			if pc, ok := nw.prio.(priorityCopier); ok {
				prio = pc.CopyPriorities(prio)
				nw.jPrio = prio
			} else {
				prio = nw.prio.Priorities()
			}
			jt.SetPriorities(prio)
		}
	}
	nw.cfg.Protocol.BeginInterval(nw.ctx)
	return nil
}

// emitConflicts records the conflict topology at the head of the event
// stream, one event per undirected edge, so offline auditors can rebuild the
// graph. Fully-interfering runs (nil or complete graph) emit nothing: their
// streams stay byte-identical to the seed medium's, and readers default to
// the complete graph.
func (nw *Network) emitConflicts() {
	sink := nw.inst.sink
	g := nw.med.Graph()
	if sink == nil || g == nil || g.Complete() {
		return
	}
	g.EachEdge(func(i, j int) {
		sink.Emit(telemetry.Event{
			K: 0, At: 0, Link: i, Kind: telemetry.EventConflict,
			Fields: map[string]float64{"peer": float64(j)},
		})
	})
}

// endInterval closes the current interval after the engine drained its
// events: protocol commit, leak check, ledger update, observers, telemetry.
func (nw *Network) endInterval() error {
	k := nw.intervals
	nw.cfg.Protocol.EndInterval(nw.ctx)
	nw.cont.Clear()
	if pending := nw.eng.Pending(); pending != 0 {
		return fmt.Errorf("mac: protocol %s leaked %d events past interval %d",
			nw.cfg.Protocol.Name(), pending, k)
	}
	if err := nw.ledger.EndInterval(nw.ctx.served); err != nil {
		return err
	}
	if jt := nw.journeys; jt != nil {
		// After the ledger's Eq. 1 update, so timeline points carry d_n(k);
		// before the interval event fires, so live /api/links readers see a
		// board as fresh as the event stream.
		jt.EndInterval(nw.ctx.served, nw.debtFn)
	}
	for _, obs := range nw.cfg.Observers {
		obs.ObserveInterval(k, nw.arrivals, nw.ctx.served)
	}
	nw.inst.endInterval(nw, k, nw.ctx.End)
	nw.intervals++
	if nw.check != nil {
		if err := nw.check(); err != nil {
			return fmt.Errorf("mac: interval %d: %w", k, err)
		}
	}
	if nw.wallEnd != nil {
		nw.wallEnd(k, nw.ctx.End)
	}
	return nil
}
