// Package mac provides the shared machinery every MAC protocol in this
// repository builds on: the per-interval execution context, the slotted
// contention coordinator that models freeze-on-busy backoff countdown with
// carrier sensing, and the network runner that drives a protocol through the
// interval structure of Section II-B.
package mac

import (
	"rtmac/internal/debt"
	"rtmac/internal/journey"
	"rtmac/internal/medium"
	"rtmac/internal/phy"
	"rtmac/internal/sim"
)

// Context exposes one interval's state to a protocol. All packets arriving
// at the beginning of interval k share the deadline at the interval's end;
// whatever is still pending at End is flushed (Step 7 of Algorithm 2).
type Context struct {
	Eng *sim.Engine
	// Med is the channel as protocols see it: an interface, so policies stay
	// independent of the concrete medium implementation.
	Med     Medium
	Profile phy.Profile
	Ledger  *debt.Ledger
	cont    *Contention

	// K is the interval index, Start/End its boundaries.
	K          int64
	Start, End sim.Time

	arrivals []int
	pending  []int
	served   []int
	empty    []bool // link has a priority-claiming empty frame queued

	// dataCB/emptyCB are per-link medium callbacks built once at
	// construction; dataDone/emptyDone are the continuation slots they
	// forward to. The medium allows at most one in-flight transmission per
	// link (Start panics otherwise), so one slot per link suffices, and
	// Transmit* passes the prebuilt callback instead of allocating a closure
	// per call.
	dataCB    []func(medium.Outcome)
	emptyCB   []func(medium.Outcome)
	dataDone  []func(delivered bool)
	emptyDone []func()

	// jt, when set, receives contention rounds protocols run outside the
	// shared coordinator (FCSMA's private per-round draws) via NoteRound.
	jt *journey.Tracer
}

func newContext(eng *sim.Engine, med Medium, profile phy.Profile, ledger *debt.Ledger) *Context {
	n := med.Links()
	c := &Context{
		Eng:       eng,
		Med:       med,
		Profile:   profile,
		Ledger:    ledger,
		arrivals:  make([]int, n),
		pending:   make([]int, n),
		served:    make([]int, n),
		empty:     make([]bool, n),
		dataCB:    make([]func(medium.Outcome), n),
		emptyCB:   make([]func(medium.Outcome), n),
		dataDone:  make([]func(delivered bool), n),
		emptyDone: make([]func(), n),
	}
	for i := 0; i < n; i++ {
		link := i
		c.dataCB[link] = func(o medium.Outcome) {
			delivered := o == medium.Delivered
			if delivered {
				c.pending[link]--
				c.served[link]++
			}
			// Clear the slot before invoking: the continuation may chain
			// another TransmitData on this link, refilling it.
			done := c.dataDone[link]
			c.dataDone[link] = nil
			if done != nil {
				done(delivered)
			}
		}
		c.emptyCB[link] = func(medium.Outcome) {
			done := c.emptyDone[link]
			c.emptyDone[link] = nil
			if done != nil {
				done()
			}
		}
	}
	return c
}

func (c *Context) beginInterval(k int64, start, end sim.Time, arrivals []int) {
	c.K = k
	c.Start, c.End = start, end
	copy(c.arrivals, arrivals)
	copy(c.pending, arrivals)
	for n := range c.served {
		c.served[n] = 0
		c.empty[n] = false
	}
}

// Links returns N.
func (c *Context) Links() int { return len(c.pending) }

// Contention returns the network's slotted-backoff coordinator. Entries a
// protocol adds are cleared automatically at every interval end.
func (c *Context) Contention() *Contention { return c.cont }

// NoteRound reports one contention round a protocol ran outside the shared
// coordinator — FCSMA's private per-round backoff draws — so the journey
// tracer still sees the link competing. No-op unless journeys are enabled.
func (c *Context) NoteRound(n, backoff int) {
	if c.jt != nil {
		c.jt.ObserveRound(n, backoff)
	}
}

// Arrivals returns A_n(k) for link n.
func (c *Context) Arrivals(n int) int { return c.arrivals[n] }

// Pending returns the number of undelivered packets link n still buffers.
func (c *Context) Pending(n int) int { return c.pending[n] }

// Served returns S_n(k) so far in this interval.
func (c *Context) Served(n int) int { return c.served[n] }

// ServedVector returns a copy of the S(k) vector.
func (c *Context) ServedVector() []int {
	out := make([]int, len(c.served))
	copy(out, c.served)
	return out
}

// Remaining returns the time left before the interval deadline.
func (c *Context) Remaining() sim.Time {
	if r := c.End - c.Eng.Now(); r > 0 {
		return r
	}
	return 0
}

// FitsData reports whether a full data exchange still fits in the interval.
func (c *Context) FitsData() bool { return c.Remaining() >= c.Profile.DataAirtime }

// FitsEmpty reports whether an empty priority-claiming frame still fits.
func (c *Context) FitsEmpty() bool { return c.Remaining() >= c.Profile.EmptyAirtime }

// QueueEmptyFrame gives link n an empty packet to transmit (Step 2 of
// Algorithm 2: a swap candidate with no arrivals claims its priority).
func (c *Context) QueueEmptyFrame(n int) { c.empty[n] = true }

// HasEmptyFrame reports whether link n has an empty frame queued.
func (c *Context) HasEmptyFrame(n int) bool { return c.empty[n] }

// HasTraffic reports whether link n has anything to put on the air.
func (c *Context) HasTraffic(n int) bool { return c.pending[n] > 0 || c.empty[n] }

// TransmitData starts one data-packet exchange on link n. It returns false
// without transmitting when the link has no pending packet or the exchange
// would overrun the deadline (Remark 4). onDone receives whether the packet
// was delivered; bookkeeping (pending/served) is applied before onDone runs.
func (c *Context) TransmitData(n int, onDone func(delivered bool)) bool {
	if c.pending[n] <= 0 || !c.FitsData() {
		return false
	}
	c.dataDone[n] = onDone
	c.Med.Start(n, c.Profile.DataAirtime, false, c.dataCB[n])
	return true
}

// TransmitEmpty starts an empty priority-claiming frame on link n, if one is
// queued and fits. Empty frames are sent at most once: transmitting consumes
// the queued frame regardless of collision (the claim is in the airtime, not
// the payload).
func (c *Context) TransmitEmpty(n int, onDone func()) bool {
	if !c.empty[n] || !c.FitsEmpty() {
		return false
	}
	c.empty[n] = false
	c.emptyDone[n] = onDone
	c.Med.Start(n, c.Profile.EmptyAirtime, true, c.emptyCB[n])
	return true
}

// ForceEmptyFrame queues and immediately transmits an empty frame for link n
// even if none was queued — the time-squeeze fallback a swap candidate uses
// when its data packet no longer fits but its priority claim must still be
// heard (see the package comment in dp for why this keeps σ consistent).
func (c *Context) ForceEmptyFrame(n int, onDone func()) bool {
	c.empty[n] = true
	return c.TransmitEmpty(n, onDone)
}
