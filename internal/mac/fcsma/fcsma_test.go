package fcsma

import (
	"testing"

	"rtmac/internal/arrival"
	"rtmac/internal/mac"
	"rtmac/internal/metrics"
	"rtmac/internal/phy"
)

func fastProfile() phy.Profile {
	return phy.Profile{Name: "test", Slot: 1, DataAirtime: 10, EmptyAirtime: 2, Interval: 200}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{CWMin: 0, CWMax: 64, Levels: 4, Quantum: 1},
		{CWMin: 8, CWMax: 4, Levels: 4, Quantum: 1},
		{CWMin: 2, CWMax: 64, Levels: 0, Quantum: 1},
		{CWMin: 2, CWMax: 64, Levels: 4, Quantum: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestWindowDiscretizationAndSaturation(t *testing.T) {
	cfg := DefaultConfig() // CWMin 32, CWMax 128, 3 levels, quantum 3
	tests := []struct {
		debt float64
		want int
	}{
		{0, 128},   // level 0
		{2.9, 128}, // still level 0
		{3, 64},    // level 1
		{6, 32},    // level 2 (top)
		{9, 32},    // saturated
		{50, 32},   // saturated: same window as debt 6
		{1e9, 32},  // deeply saturated
	}
	for _, tc := range tests {
		if got := cfg.Window(tc.debt); got != tc.want {
			t.Errorf("Window(%v) = %d, want %d", tc.debt, got, tc.want)
		}
	}
}

func TestWindowRespectsCWMin(t *testing.T) {
	cfg := Config{CWMin: 4, CWMax: 16, Levels: 8, Quantum: 1}
	if got := cfg.Window(100); got != 4 {
		t.Fatalf("Window(100) = %d, want CWMin 4", got)
	}
}

func runFCSMA(t *testing.T, seed uint64, n int, p float64, av arrival.VectorProcess,
	q []float64, intervals int) (*mac.Network, *metrics.Collector, *Protocol) {
	t.Helper()
	prot, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	col, err := metrics.NewCollector(q)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = p
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        seed,
		Profile:     fastProfile(),
		SuccessProb: probs,
		Arrivals:    av,
		Required:    q,
		Protocol:    prot,
		Observers:   []mac.Observer{col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(intervals); err != nil {
		t.Fatal(err)
	}
	return nw, col, prot
}

func TestFCSMADeliversLightLoad(t *testing.T) {
	// One packet per interval on 2 links with 20 transmission slots: FCSMA
	// must fulfill this easily despite backoff overhead.
	av, _ := arrival.Uniform(2, arrival.Deterministic{N: 1})
	_, col, prot := runFCSMA(t, 1, 2, 1, av, []float64{0.95, 0.95}, 1000)
	if d := col.TotalDeficiency(); d > 0.02 {
		t.Fatalf("light load deficiency %v", d)
	}
	if prot.Rounds() == 0 {
		t.Fatal("no contention rounds")
	}
}

func TestFCSMACollidesUnderPressure(t *testing.T) {
	// Many backlogged links with saturated debts draw from tiny windows:
	// collisions are FCSMA's signature failure and must be observed.
	const n = 10
	av, _ := arrival.Uniform(n, arrival.Deterministic{N: 3})
	q := make([]float64, n)
	for i := range q {
		q[i] = 3 // infeasible: 30 packets demanded, 20 slots available
	}
	nw, _, _ := runFCSMA(t, 2, n, 1, av, q, 300)
	st := nw.Medium().Stats()
	if st.Collisions == 0 {
		t.Fatal("saturated FCSMA produced no collisions")
	}
	if st.Deliveries == 0 {
		t.Fatal("saturated FCSMA delivered nothing at all")
	}
}

func TestFCSMALosesCapacityVersusPerfectScheduling(t *testing.T) {
	// At a load a perfect scheduler could fulfill exactly (20 slots, 20
	// packets demanded), FCSMA's contention overhead must leave a visible
	// deficiency.
	const n = 10
	av, _ := arrival.Uniform(n, arrival.Deterministic{N: 2})
	q := make([]float64, n)
	for i := range q {
		q[i] = 2
	}
	_, col, _ := runFCSMA(t, 3, n, 1, av, q, 300)
	if d := col.TotalDeficiency(); d < 0.5 {
		t.Fatalf("FCSMA at exact capacity shows deficiency %v, want a visible gap", d)
	}
}

func TestFCSMANoEventsLeakAcrossIntervals(t *testing.T) {
	// The round timer must be cancelled at interval end; the network run
	// would error otherwise. Stress with arrival patterns that leave rounds
	// pending near deadlines.
	const n = 4
	av, _ := arrival.Uniform(n, arrival.BurstyUniform{Alpha: 0.9, Lo: 1, Hi: 6})
	q := make([]float64, n)
	for i := range q {
		q[i] = 2
	}
	_, _, _ = runFCSMA(t, 4, n, 0.5, av, q, 500)
}
