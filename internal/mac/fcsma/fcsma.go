// Package fcsma implements the discretized FCSMA baseline the paper compares
// against (Li & Eryilmaz, "Optimal distributed scheduling under time-varying
// conditions: a fast-CSMA algorithm with applications", as used in §VI).
//
// FCSMA is debt-driven random-access CSMA: before every transmission
// opportunity each backlogged link draws a random backoff, and the link with
// the smallest draw captures the channel for one packet. In the discretized
// version the range of delivery debt is divided into a finite number of
// sections, each mapped to a predetermined contention-window size — higher
// debt, smaller window. Three loss mechanisms follow, and all three are
// reproduced here because the paper attributes FCSMA's deficiency gap to
// them:
//
//   - backoff overhead: every contention round idles min-draw slots;
//   - collisions: equal draws transmit simultaneously and are destroyed;
//   - debt saturation: above the top section the window no longer shrinks,
//     so FCSMA stops responding to further debt growth (the cause of the
//     group-1 starvation in the paper's Figs. 7–8).
package fcsma

import (
	"fmt"

	"rtmac/internal/mac"
	"rtmac/internal/medium"
	"rtmac/internal/sim"
)

// Config sets the discretization of debt into contention-window sizes.
type Config struct {
	// CWMin is the smallest (most aggressive) contention window, in slots.
	CWMin int
	// CWMax is the largest window, used at zero debt.
	CWMax int
	// Levels is the number of debt sections; section l uses window
	// max(CWMin, CWMax >> l), and every debt at or above Quantum·(Levels-1)
	// falls in the top section (the saturation behaviour).
	Levels int
	// Quantum is the debt width of one section.
	Quantum float64
}

// DefaultConfig mirrors the discretization spirit of the reference
// implementation: three debt sections mapping windows 128 → 64 → 32 slots,
// saturating at debt 6. The sizes are calibrated so that a fully backlogged
// 20-link network keeps a unique-minimum probability of ≈ 0.72–0.92 (see the
// per-window analysis in the package tests): aggressive enough to respond to
// debt, yet not so small that symmetric saturation collapses into a
// permanent collision spiral — matching the qualitative behaviour of the
// reference FCSMA, which loses ≈ 30 % of capacity to backoff overhead and
// collisions rather than all of it.
func DefaultConfig() Config {
	return Config{CWMin: 32, CWMax: 128, Levels: 3, Quantum: 3}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.CWMin < 1:
		return fmt.Errorf("fcsma: CWMin %d must be at least 1", c.CWMin)
	case c.CWMax < c.CWMin:
		return fmt.Errorf("fcsma: CWMax %d below CWMin %d", c.CWMax, c.CWMin)
	case c.Levels < 1:
		return fmt.Errorf("fcsma: need at least 1 level, got %d", c.Levels)
	case c.Quantum <= 0:
		return fmt.Errorf("fcsma: quantum %v must be positive", c.Quantum)
	}
	return nil
}

// Window returns the contention-window size for a given positive debt.
func (c Config) Window(positiveDebt float64) int {
	level := int(positiveDebt / c.Quantum)
	if level >= c.Levels {
		level = c.Levels - 1
	}
	w := c.CWMax >> uint(level)
	if w < c.CWMin {
		w = c.CWMin
	}
	return w
}

// Protocol is the discretized FCSMA policy.
type Protocol struct {
	cfg        Config
	subscribed bool
	ctx        *mac.Context // non-nil only while an interval is running
	roundTimer *sim.Timer
	rounds     int64
	// rng caches the protocol's backoff stream; winners/fireFn are the
	// per-round scratch and the cached timer callback (at most one round is
	// pending at a time — roundTimer guards — so one winners slice suffices).
	rng     *sim.RNG
	winners []int
	fireFn  func()
}

// New validates cfg and returns the protocol.
func New(cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Protocol{cfg: cfg}, nil
}

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "fcsma" }

// Rounds returns the number of contention rounds started, for diagnostics.
func (p *Protocol) Rounds() int64 { return p.rounds }

// BeginInterval implements mac.Protocol.
func (p *Protocol) BeginInterval(ctx *mac.Context) {
	if !p.subscribed {
		ctx.Med.Subscribe(p)
		p.subscribed = true
		p.rng = ctx.Eng.RNG("fcsma")
		p.fireFn = func() {
			p.roundTimer = nil
			p.fireRound()
		}
	}
	p.ctx = ctx
	p.startRound()
}

// EndInterval implements mac.Protocol.
func (p *Protocol) EndInterval(ctx *mac.Context) {
	if p.roundTimer != nil {
		ctx.Eng.Cancel(p.roundTimer)
		p.roundTimer = nil
	}
	p.ctx = nil
}

// ChannelBusy implements medium.Listener.
func (p *Protocol) ChannelBusy(sim.Time) {}

// ChannelIdle implements medium.Listener: every release of the channel opens
// the next transmission opportunity, so all backlogged links re-contend.
func (p *Protocol) ChannelIdle(sim.Time) {
	if p.ctx != nil {
		p.startRound()
	}
}

// startRound draws a backoff for every backlogged link and schedules the
// minimum-draw links to transmit. Ties transmit simultaneously and collide.
func (p *Protocol) startRound() {
	ctx := p.ctx
	if p.roundTimer != nil || !ctx.FitsData() {
		return
	}
	rng := p.rng
	minDraw := -1
	p.winners = p.winners[:0]
	for link := 0; link < ctx.Links(); link++ {
		if ctx.Pending(link) == 0 {
			continue
		}
		cw := p.cfg.Window(ctx.Ledger.PositiveDebt(link))
		draw := rng.IntN(cw)
		// FCSMA contends outside the shared coordinator, so its rounds reach
		// the journey tracer through the context (no-op when disabled).
		ctx.NoteRound(link, draw)
		switch {
		case minDraw == -1 || draw < minDraw:
			minDraw = draw
			p.winners = p.winners[:0]
			p.winners = append(p.winners, link)
		case draw == minDraw:
			p.winners = append(p.winners, link)
		}
	}
	if minDraw == -1 {
		return // nothing backlogged
	}
	p.rounds++
	if minDraw == 0 {
		// A zero-slot backoff fires at this very instant, and nothing else
		// can be pending now (rounds start only once the channel fully
		// idles), so transmit directly instead of bouncing off the heap.
		p.fireRound()
		return
	}
	p.roundTimer = ctx.Eng.After(sim.Time(minDraw)*ctx.Profile.Slot, p.fireFn)
}

// fireRound transmits the round's minimum-draw links. Ties transmit
// simultaneously and collide on the medium.
func (p *Protocol) fireRound() {
	for _, link := range p.winners {
		// One packet per capture; the ChannelIdle after it triggers the next
		// round. A link whose exchange no longer fits stays silent.
		p.ctx.TransmitData(link, nil)
	}
	// If nothing fit, the channel stays idle and no further rounds can fit
	// either: the interval effectively ends here.
}

// Interface compliance.
var (
	_ mac.Protocol    = (*Protocol)(nil)
	_ medium.Listener = (*Protocol)(nil)
)
