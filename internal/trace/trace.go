// Package trace records packet-level transmission histories from a
// simulated medium and renders them as text logs or per-interval ASCII
// timelines. It exists for debugging protocol behaviour and for making the
// collision-freedom and priority-ordering of the DP protocol visible in
// examples and documentation.
package trace

import (
	"fmt"
	"io"
	"strings"

	"rtmac/internal/medium"
	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

// Record is one completed transmission.
type Record struct {
	Link    int
	Start   sim.Time
	End     sim.Time
	Empty   bool
	Outcome medium.Outcome
}

// Recorder captures transmissions from a medium into a bounded ring buffer.
type Recorder struct {
	capacity int
	ring     []Record
	next     int
	total    int64
}

// NewRecorder returns a recorder keeping the most recent capacity records.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity %d must be positive", capacity)
	}
	return &Recorder{capacity: capacity}, nil
}

// Attach registers the recorder as one of the medium's trace hooks.
func (r *Recorder) Attach(med *medium.Medium) {
	med.AddTrace(func(tx medium.Transmission, outcome medium.Outcome) {
		r.add(Record{
			Link:    tx.Link,
			Start:   tx.Start,
			End:     tx.End,
			Empty:   tx.Empty,
			Outcome: outcome,
		})
	})
}

func (r *Recorder) add(rec Record) {
	if len(r.ring) < r.capacity {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
		r.next = (r.next + 1) % r.capacity
	}
	r.total++
}

// Total returns how many transmissions were observed, including evicted ones.
func (r *Recorder) Total() int64 { return r.total }

// Snapshot returns the retained transmissions in arrival order, oldest
// first, regardless of how often the ring has wrapped. The returned slice is
// a copy and safe to hold across further recording.
func (r *Recorder) Snapshot() []Record {
	out := make([]Record, 0, len(r.ring))
	if len(r.ring) == r.capacity {
		// Full ring: next points at the oldest surviving record.
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
		return out
	}
	return append(out, r.ring...)
}

// Records returns the retained transmissions in chronological order. Since
// records are added as transmissions complete, chronological order is
// arrival order; Records is Snapshot under its historical name.
func (r *Recorder) Records() []Record { return r.Snapshot() }

// Emit implements telemetry.Sink: the recorder captures "tx" events from a
// telemetry event stream exactly as it captures medium trace hooks, so a
// simulation needs only one instrumentation hook feeding both systems.
// Events of other kinds are ignored.
func (r *Recorder) Emit(ev telemetry.Event) {
	if ev.Kind != telemetry.EventTx {
		return
	}
	r.add(Record{
		Link:    ev.Link,
		Start:   ev.At - sim.Time(ev.Fields["dur"]),
		End:     ev.At,
		Empty:   ev.Fields["empty"] != 0,
		Outcome: medium.Outcome(ev.Fields["outcome"]),
	})
}

var _ telemetry.Sink = (*Recorder)(nil)

// WriteLog renders the retained records one per line.
func (r *Recorder) WriteLog(w io.Writer) error {
	for _, rec := range r.Records() {
		kind := "data "
		if rec.Empty {
			kind = "empty"
		}
		if _, err := fmt.Fprintf(w, "%10s - %10s  link %2d  %s  %s\n",
			rec.Start, rec.End, rec.Link, kind, rec.Outcome); err != nil {
			return err
		}
	}
	return nil
}

// RenderTimeline draws the records that overlap [from, to) as one ASCII lane
// per link: each column is (to-from)/width of simulated time, 'D' marks a
// delivered data exchange, 'x' a channel loss, 'C' a collision, 'e' an empty
// frame, and '.' idle time.
func RenderTimeline(w io.Writer, records []Record, from, to sim.Time, width int) error {
	if to <= from {
		return fmt.Errorf("trace: empty window [%v, %v)", from, to)
	}
	if width < 10 {
		width = 80
	}
	maxLink := -1
	for _, rec := range records {
		if rec.Link > maxLink {
			maxLink = rec.Link
		}
	}
	if maxLink < 0 {
		return fmt.Errorf("trace: no records")
	}
	lanes := make([][]byte, maxLink+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	span := float64(to - from)
	for _, rec := range records {
		if rec.End <= from || rec.Start >= to {
			continue
		}
		glyph := byte('D')
		switch {
		case rec.Outcome == medium.Collided:
			glyph = 'C'
		case rec.Empty:
			glyph = 'e'
		case rec.Outcome == medium.Lost:
			glyph = 'x'
		}
		lo := int(float64(rec.Start-from) / span * float64(width))
		hi := int(float64(rec.End-from) / span * float64(width))
		if lo < 0 {
			lo = 0
		}
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			lanes[rec.Link][c] = glyph
		}
	}
	fmt.Fprintf(w, "timeline %v .. %v (one column = %.1fus)\n", from, to, span/float64(width))
	for link, lane := range lanes {
		if _, err := fmt.Fprintf(w, "link %2d |%s|\n", link, lane); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "legend: D delivered, x lost, C collided, e empty frame, . idle")
	return err
}
