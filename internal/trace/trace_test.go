package trace

import (
	"bytes"
	"strings"
	"testing"

	"rtmac/internal/medium"
	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestRecorderCapturesTransmissions(t *testing.T) {
	eng := sim.NewEngine(1)
	med, err := medium.New(eng, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(med)
	med.Start(0, 100, false, nil)
	eng.ScheduleAt(150, func() { med.Start(1, 70, true, nil) })
	eng.Run()
	records := rec.Records()
	if len(records) != 2 || rec.Total() != 2 {
		t.Fatalf("got %d records (total %d), want 2", len(records), rec.Total())
	}
	if records[0].Link != 0 || records[0].Start != 0 || records[0].End != 100 ||
		records[0].Empty || records[0].Outcome != medium.Delivered {
		t.Fatalf("record 0 = %+v", records[0])
	}
	if records[1].Link != 1 || !records[1].Empty {
		t.Fatalf("record 1 = %+v", records[1])
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec, _ := NewRecorder(3)
	for i := 0; i < 7; i++ {
		rec.add(Record{Link: i})
	}
	records := rec.Records()
	if len(records) != 3 || rec.Total() != 7 {
		t.Fatalf("got %d records, total %d", len(records), rec.Total())
	}
	for i, want := range []int{4, 5, 6} {
		if records[i].Link != want {
			t.Fatalf("records = %+v, want links 4,5,6 in order", records)
		}
	}
}

func TestWriteLog(t *testing.T) {
	rec, _ := NewRecorder(4)
	rec.add(Record{Link: 2, Start: 10, End: 110, Outcome: medium.Delivered})
	rec.add(Record{Link: 3, Start: 120, End: 190, Empty: true, Outcome: medium.Delivered})
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"link  2", "link  3", "data", "empty", "delivered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	records := []Record{
		{Link: 0, Start: 0, End: 100, Outcome: medium.Delivered},
		{Link: 1, Start: 110, End: 210, Outcome: medium.Lost},
		{Link: 0, Start: 220, End: 290, Empty: true, Outcome: medium.Delivered},
		{Link: 2, Start: 300, End: 400, Outcome: medium.Collided},
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, records, 0, 400, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"link  0", "link  1", "link  2", "D", "x", "e", "C", "legend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Lane 1 must contain 'x' but no 'D'.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "link  1") && strings.Contains(line, "D") {
			t.Fatalf("lane 1 contains a delivery: %s", line)
		}
	}
}

func TestRenderTimelineValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, nil, 0, 100, 40); err == nil {
		t.Fatal("no records accepted")
	}
	if err := RenderTimeline(&buf, []Record{{Link: 0}}, 100, 100, 40); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestRenderTimelineClipsOutOfWindow(t *testing.T) {
	records := []Record{
		{Link: 0, Start: 0, End: 50, Outcome: medium.Delivered},    // before window
		{Link: 0, Start: 500, End: 600, Outcome: medium.Delivered}, // after window
		{Link: 0, Start: 90, End: 210, Outcome: medium.Delivered},  // straddles start
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, records, 100, 400, 30); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "D") {
		t.Fatalf("straddling record not drawn:\n%s", out)
	}
}

func TestRenderTimelineEmptyRing(t *testing.T) {
	rec, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, rec.Records(), 0, 100, 40); err == nil {
		t.Fatal("empty ring accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("empty ring still produced output:\n%s", buf.String())
	}
}

func TestRenderTimelineAllRecordsOutsideWindow(t *testing.T) {
	records := []Record{
		{Link: 0, Start: 0, End: 50, Outcome: medium.Delivered},
		{Link: 1, Start: 900, End: 1000, Outcome: medium.Lost},
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, records, 100, 800, 20); err != nil {
		t.Fatal(err)
	}
	// Lanes still render for every link seen, but carry only idle time.
	out := buf.String()
	lanes := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "link ") {
			continue
		}
		lanes++
		lane := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
		if lane != strings.Repeat(".", 20) {
			t.Fatalf("out-of-window record drawn: %s", line)
		}
	}
	if lanes != 2 {
		t.Fatalf("rendered %d lanes, want 2:\n%s", lanes, out)
	}
}

func TestRenderTimelineNarrowWidthFallsBackToDefault(t *testing.T) {
	records := []Record{{Link: 0, Start: 0, End: 100, Outcome: medium.Delivered}}
	for _, width := range []int{-3, 0, 9} {
		var buf bytes.Buffer
		if err := RenderTimeline(&buf, records, 0, 400, width); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(line, "link  0") {
				continue
			}
			lane := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(lane) != 80 {
				t.Fatalf("width %d: lane is %d columns, want the 80-column default", width, len(lane))
			}
		}
	}
}

func TestRenderTimelineSingleSlotWindow(t *testing.T) {
	// A window of a single time unit is the degenerate interval; every
	// overlapping record collapses onto the same columns without panicking.
	records := []Record{
		{Link: 0, Start: 0, End: 1, Outcome: medium.Delivered},
		{Link: 1, Start: 0, End: 5, Outcome: medium.Lost}, // clipped to the window
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, records, 0, 1, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "D") || !strings.Contains(out, "x") {
		t.Fatalf("single-slot window lost records:\n%s", out)
	}
}

func TestRenderTimelineOneColumnRecord(t *testing.T) {
	// A zero-duration record at an interior instant maps to exactly one column.
	records := []Record{{Link: 0, Start: 100, End: 100, Outcome: medium.Delivered}}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, records, 0, 400, 40); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "D"); n != 2 {
		// One in the lane, one in the legend.
		t.Fatalf("zero-duration record drew %d 'D' glyphs, want exactly 1 in the lane:\n%s",
			n-1, buf.String())
	}
}

func TestSnapshotArrivalOrderAcrossWrap(t *testing.T) {
	r, err := NewRecorder(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		r.add(Record{Link: i, Start: sim.Time(i * 100), End: sim.Time(i*100 + 50)})
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d, want 7", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot length = %d, want 3", len(snap))
	}
	for i, rec := range snap {
		if want := 4 + i; rec.Link != want {
			t.Errorf("snapshot[%d].Link = %d, want %d (arrival order)", i, rec.Link, want)
		}
	}
	// Records is defined as Snapshot.
	recs := r.Records()
	for i := range recs {
		if recs[i] != snap[i] {
			t.Errorf("Records()[%d] = %+v differs from Snapshot()[%d] = %+v", i, recs[i], i, snap[i])
		}
	}
}

func TestRecorderAsTelemetrySink(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	r.Emit(telemetry.Event{
		K: 0, At: 220, Link: 2, Kind: telemetry.EventTx,
		Fields: map[string]float64{"dur": 120, "empty": 0, "outcome": float64(medium.Lost)},
	})
	r.Emit(telemetry.Event{K: 0, At: 2000, Link: -1, Kind: telemetry.EventInterval}) // ignored
	recs := r.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1 (non-tx events ignored)", len(recs))
	}
	want := Record{Link: 2, Start: 100, End: 220, Empty: false, Outcome: medium.Lost}
	if recs[0] != want {
		t.Errorf("record = %+v, want %+v", recs[0], want)
	}
}
