package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rtmac/internal/telemetry"
)

func newTestPlane(t *testing.T) (*Plane, *httptest.Server) {
	t.Helper()
	p := NewPlane(nil)
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	return p, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthz(t *testing.T) {
	_, srv := newTestPlane(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func TestMetricsEndpointIsValidExposition(t *testing.T) {
	p, srv := newTestPlane(t)
	p.Registry.Counter("obs_test_total", "test counter").Add(7)
	p.Registry.Histogram("obs_test_delay", "", []float64{1, 10}).Observe(3)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	n, err := telemetry.ValidatePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if n < 2 {
		t.Fatalf("only %d samples", n)
	}
}

func TestProgressEndpoint(t *testing.T) {
	p, srv := newTestPlane(t)
	p.Tracker.FigureStarted("fig3", "Deficiency vs arrival rate", 4)
	p.Tracker.JobCompleted("fig3")
	p.Tracker.JobCompleted("fig3")
	code, body := get(t, srv.URL+"/api/progress")
	if code != http.StatusOK {
		t.Fatalf("progress status %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if snap.TotalJobs != 4 || snap.DoneJobs != 2 {
		t.Fatalf("jobs %d/%d, want 2/4", snap.DoneJobs, snap.TotalJobs)
	}
	if len(snap.Figures) != 1 || snap.Figures[0].ID != "fig3" {
		t.Fatalf("figures: %+v", snap.Figures)
	}
}

func TestDashboardServed(t *testing.T) {
	_, srv := newTestPlane(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "rtmac observability") {
		t.Fatalf("dashboard: %d", code)
	}
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path returned %d, want 404", code)
	}
}

func TestEventsSSEStreaming(t *testing.T) {
	p, srv := newTestPlane(t)
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Wait for the subscription before emitting, then stream a few events.
	deadline := time.Now().Add(2 * time.Second)
	for p.Broker.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() {
		for i := 0; i < 3; i++ {
			p.Broker.Emit(telemetry.Event{K: int64(i), Kind: "interval", Link: -1})
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	var events []telemetry.Event
	for sc.Scan() && len(events) < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (scan err: %v)", len(events), sc.Err())
	}
	for i, ev := range events {
		if ev.K != int64(i) || ev.Kind != "interval" {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
}

func TestBrokerZeroSubscribersIsNoop(t *testing.T) {
	b := NewBroker()
	// Emit with no subscribers must not block, panic, or retain anything.
	for i := 0; i < 100; i++ {
		b.Emit(telemetry.Event{K: int64(i), Fields: map[string]float64{"x": 1}})
	}
	ch, cancel := b.Subscribe(4)
	defer cancel()
	if len(ch) != 0 {
		t.Fatal("events from before subscription leaked in")
	}
}

func TestBrokerDropsOnSlowSubscriber(t *testing.T) {
	b := NewBroker()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ { // nobody draining: must not block
		b.Emit(telemetry.Event{K: int64(i)})
	}
	if got := len(ch); got != 2 {
		t.Fatalf("buffered %d, want 2", got)
	}
}

func TestTrackerRateAndETA(t *testing.T) {
	tr := NewTracker()
	clock := time.Unix(1000, 0)
	tr.now = func() time.Time { return clock }
	tr.FigureStarted("fig5", "Unreliable links", 10)
	clock = clock.Add(5 * time.Second)
	for i := 0; i < 5; i++ {
		tr.JobCompleted("fig5")
	}
	snap := tr.Snapshot()
	if snap.ElapsedSec != 5 {
		t.Fatalf("elapsed %v", snap.ElapsedSec)
	}
	if snap.JobsPerSec != 1 {
		t.Fatalf("rate %v, want 1", snap.JobsPerSec)
	}
	if snap.ETASec != 5 {
		t.Fatalf("ETA %v, want 5", snap.ETASec)
	}
	for i := 0; i < 5; i++ {
		tr.JobCompleted("fig5")
	}
	tr.FigureFinished("fig5")
	snap = tr.Snapshot()
	if snap.ETASec != 0 {
		t.Fatalf("ETA after completion %v, want 0", snap.ETASec)
	}
	if !snap.Figures[0].Finished {
		t.Fatal("figure not marked finished")
	}
}

func TestTrackerConcurrentJobCompletion(t *testing.T) {
	tr := NewTracker()
	tr.FigureStarted("a", "", 400)
	tr.FigureStarted("b", "", 400)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.JobCompleted("a")
				tr.JobCompleted("b")
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.DoneJobs != 800 {
		t.Fatalf("done %d, want 800", snap.DoneJobs)
	}
}

func TestPlaneStartAndClose(t *testing.T) {
	p := NewPlane(nil)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := p.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	code, _ := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz over real listener: %d", code)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
