package obs

// historyHTML is the run-history page: one self-contained document that
// renders /api/runs — the attached run ledger's records and cross-run metric
// trajectories — as a table plus unicode sparklines. With no ledger attached
// the page says so instead of erroring.
const historyHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>rtmac run history</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       background: #101418; color: #d6dee6; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
a { color: #6fb3ff; }
table { border-collapse: collapse; margin-top: .5rem; }
td, th { border: 1px solid #2c3440; padding: .25rem .6rem; text-align: left; }
.dirty { color: #e0af68; }
.spark { letter-spacing: .05em; }
#empty { color: #8b98a5; }
</style>
</head>
<body>
<h1>rtmac run history</h1>
<p><a href="/">dashboard</a> &middot; <a href="/compare">compare</a> &middot; <a href="/api/runs">/api/runs</a></p>
<p id="empty" style="display:none"></p>
<h2 id="runshead" style="display:none">Runs</h2>
<table id="runs" style="display:none"></table>
<h2 id="trajhead" style="display:none">Trajectories (per run mean)</h2>
<table id="traj" style="display:none"></table>
<script>
function esc(s) { return String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c])); }
const SPARK = '▁▂▃▄▅▆▇█';
function spark(vals) {
  const lo = Math.min(...vals), hi = Math.max(...vals);
  const span = hi - lo || 1;
  return vals.map(v => SPARK[Math.min(7, Math.floor(8 * (v - lo) / span))]).join('');
}
async function refresh() {
  let h;
  try {
    const r = await fetch('/api/runs');
    if (!r.ok) { showEmpty('no run ledger attached (start with -ledger DIR)'); return; }
    h = await r.json();
  } catch (e) { return; }
  if (!h.enabled || !(h.runs || []).length) {
    showEmpty('ledger ' + esc(h.dir || '') + ' is empty'); return;
  }
  document.getElementById('empty').style.display = 'none';
  show('runshead'); show('runs');
  const rows = ['<tr><th>id</th><th>appended</th><th>kind</th><th>tool</th>' +
    '<th>scenario</th><th>commit</th><th>seeds</th><th>points</th><th>compare</th></tr>'];
  for (const run of h.runs.slice().reverse()) {
    // Deep-link the compare page with this run as the baseline against the
    // ledger head; the short ID is a resolvable prefix reference.
    const cmp = '/compare?a=' + encodeURIComponent(run.short_id) + '&b=latest';
    rows.push('<tr><td>' + esc(run.short_id) + '</td><td>' + esc(run.appended || '') +
      '</td><td>' + esc(run.kind) + '</td><td>' + esc(run.tool || '') + '</td><td>' +
      esc(run.scenario || '') + '</td><td>' + esc(run.commit || '') +
      (run.dirty ? ' <span class="dirty">dirty</span>' : '') + '</td><td>' +
      (run.seeds || 0) + '</td><td>' + run.points +
      '</td><td><a href="' + cmp + '">vs latest</a></td></tr>');
  }
  document.getElementById('runs').innerHTML = rows.join('');
  const trajs = h.trajectories || [];
  if (trajs.length) {
    show('trajhead'); show('traj');
    const trows = ['<tr><th>figure</th><th>series</th><th>metric</th><th>better</th>' +
      '<th>latest</th><th>trend (oldest → newest)</th></tr>'];
    for (const t of trajs) {
      const vals = (t.values || []).map(v => v.mean);
      const latest = vals.length ? vals[vals.length - 1] : NaN;
      trows.push('<tr><td>' + esc(t.figure) + '</td><td>' + esc(t.series) + '</td><td>' +
        esc(t.metric) + '</td><td>' + esc(t.better) + '</td><td>' + latest.toPrecision(4) +
        '</td><td class="spark">' + spark(vals) + '</td></tr>');
    }
    document.getElementById('traj').innerHTML = trows.join('');
  }
}
function show(id) { document.getElementById(id).style.display = ''; }
function showEmpty(msg) {
  const el = document.getElementById('empty');
  el.textContent = msg; el.style.display = '';
}
refresh();
setInterval(refresh, 5000);
</script>
</body>
</html>
`
