package obs_test

import (
	"testing"

	"rtmac/internal/arrival"
	"rtmac/internal/core"
	"rtmac/internal/mac"
	"rtmac/internal/obs"
	"rtmac/internal/phy"
	"rtmac/internal/telemetry"
)

// newControlNetwork builds the paper's control scenario with the given event
// sink (nil = observability disabled).
func newControlNetwork(tb testing.TB, sink telemetry.Sink) *mac.Network {
	tb.Helper()
	const links = 10
	proc, err := arrival.NewBernoulli(0.78)
	if err != nil {
		tb.Fatal(err)
	}
	av, err := arrival.Uniform(links, proc)
	if err != nil {
		tb.Fatal(err)
	}
	prob := make([]float64, links)
	req := make([]float64, links)
	for i := range prob {
		prob[i] = 0.7
		req[i] = 0.99 * 0.78
	}
	prot, err := core.NewDBDP(links)
	if err != nil {
		tb.Fatal(err)
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        1,
		Profile:     phy.Control(),
		SuccessProb: prob,
		Arrivals:    av,
		Required:    req,
		Protocol:    prot,
		Events:      sink,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return nw
}

// BenchmarkIntervalPlaneDisabled is the disabled-plane case: no sink, so the
// interval loop takes the `sink == nil` fast path and skips event
// construction entirely. It must match the root package's
// BenchmarkIntervalDBDP (the pre-plane baseline) — a regression here means
// the plane leaks work into runs that never asked for it.
func BenchmarkIntervalPlaneDisabled(b *testing.B) {
	nw := newControlNetwork(b, nil)
	b.ResetTimer()
	if err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntervalPlaneIdle attaches the plane's broker with zero SSE
// subscribers — the -serve steady state when nobody is watching. Attaching
// any sink turns on event construction in the instrumentation layer, so this
// costs more than disabled; the broker itself stays allocation-free (see
// TestBrokerEmitZeroSubscribersDoesNotAllocate).
func BenchmarkIntervalPlaneIdle(b *testing.B) {
	plane := obs.NewPlane(nil)
	nw := newControlNetwork(b, plane.Broker)
	b.ResetTimer()
	if err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// TestBrokerEmitZeroSubscribersDoesNotAllocate pins the disabled-plane
// guarantee: with no subscribers, Emit is a single atomic check and
// allocates nothing, even for events carrying a Fields map.
func TestBrokerEmitZeroSubscribersDoesNotAllocate(t *testing.T) {
	b := obs.NewBroker()
	ev := telemetry.Event{K: 7, Kind: "interval", Link: -1,
		Fields: map[string]float64{"deficiency": 0.5}}
	allocs := testing.AllocsPerRun(1000, func() { b.Emit(ev) })
	if allocs != 0 {
		t.Fatalf("Emit with zero subscribers allocates %.1f objects/op, want 0", allocs)
	}
}
