package obs_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rtmac/internal/arrival"
	"rtmac/internal/core"
	"rtmac/internal/health"
	"rtmac/internal/mac"
	"rtmac/internal/obs"
	"rtmac/internal/phy"
	"rtmac/internal/telemetry"
)

// newControlNetwork builds the paper's control scenario with the given event
// sink (nil = observability disabled).
func newControlNetwork(tb testing.TB, sink telemetry.Sink) *mac.Network {
	tb.Helper()
	const links = 10
	proc, err := arrival.NewBernoulli(0.78)
	if err != nil {
		tb.Fatal(err)
	}
	av, err := arrival.Uniform(links, proc)
	if err != nil {
		tb.Fatal(err)
	}
	prob := make([]float64, links)
	req := make([]float64, links)
	for i := range prob {
		prob[i] = 0.7
		req[i] = 0.99 * 0.78
	}
	prot, err := core.NewDBDP(links)
	if err != nil {
		tb.Fatal(err)
	}
	nw, err := mac.NewNetwork(mac.NetworkConfig{
		Seed:        1,
		Profile:     phy.Control(),
		SuccessProb: prob,
		Arrivals:    av,
		Required:    req,
		Protocol:    prot,
		Events:      sink,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return nw
}

// BenchmarkIntervalPlaneDisabled is the disabled-plane case: no sink, so the
// interval loop takes the `sink == nil` fast path and skips event
// construction entirely. It must match the root package's
// BenchmarkIntervalDBDP (the pre-plane baseline) — a regression here means
// the plane leaks work into runs that never asked for it.
func BenchmarkIntervalPlaneDisabled(b *testing.B) {
	nw := newControlNetwork(b, nil)
	b.ResetTimer()
	if err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntervalPlaneIdle attaches the plane's broker with zero SSE
// subscribers — the -serve steady state when nobody is watching. Attaching
// any sink turns on event construction in the instrumentation layer, so this
// costs more than disabled; the broker itself stays allocation-free (see
// TestBrokerEmitZeroSubscribersDoesNotAllocate).
func BenchmarkIntervalPlaneIdle(b *testing.B) {
	plane := obs.NewPlane(nil)
	nw := newControlNetwork(b, plane.Broker)
	b.ResetTimer()
	if err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntervalHealthDisabled pins the health plane's when-disabled
// contract: a network with no collector, no watchdog hooks and no sink runs
// the same allocation-free interval loop as before the plane existed. The
// bench gate fails CI on any allocs/op growth here.
func BenchmarkIntervalHealthDisabled(b *testing.B) {
	nw := newControlNetwork(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// TestIntervalZeroAllocHealthDisabled is the test-shaped version of the
// benchmark above: with the health plane disabled, the interval hot path
// allocates nothing.
func TestIntervalZeroAllocHealthDisabled(t *testing.T) {
	nw := newControlNetwork(t, nil)
	if err := nw.Run(200); err != nil { // warm up steady state
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := nw.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("interval with health disabled allocates %.1f objects, want 0", allocs)
	}
}

// BenchmarkIntervalHealthEnabled is the enabled counterpart: a collector
// sampling in the background plus watchdog brackets on every interval (the
// budget is huge, so the in-budget fast path is what is measured).
func BenchmarkIntervalHealthEnabled(b *testing.B) {
	nw := newControlNetwork(b, nil)
	col := health.NewCollector(health.CollectorConfig{Registry: nw.Telemetry()})
	col.Start()
	defer col.Stop()
	dog := health.NewWatchdog(health.WatchdogConfig{Budget: time.Hour, Registry: nw.Telemetry()})
	nw.SetWallClockHooks(dog.BeginInterval, dog.EndInterval)
	b.ReportAllocs()
	b.ResetTimer()
	if err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// TestEventStreamDeterministicWithHealth is the sim-purity contract: a
// fixed-seed run produces a byte-identical event stream whether or not the
// health plane is attached. The collector samples concurrently and the
// watchdog brackets every interval, but neither may perturb the simulation
// clock or RNG; the watchdog's huge budget keeps its (wall-clock-truthful,
// inherently non-deterministic) stall events out of the stream.
func TestEventStreamDeterministicWithHealth(t *testing.T) {
	run := func(withHealth bool) []byte {
		var buf bytes.Buffer
		stream := telemetry.NewJSONL(&buf)
		nw := newControlNetwork(t, stream)
		if withHealth {
			col := health.NewCollector(health.CollectorConfig{
				Period:   10 * time.Millisecond,
				Registry: nw.Telemetry(),
			})
			col.Start()
			defer col.Stop()
			dog := health.NewWatchdog(health.WatchdogConfig{
				Budget:   time.Hour,
				Sink:     stream,
				Registry: nw.Telemetry(),
			})
			nw.SetWallClockHooks(dog.BeginInterval, dog.EndInterval)
		}
		if err := nw.Run(2000); err != nil {
			t.Fatal(err)
		}
		if err := stream.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(false)
	healthy := run(true)
	if !bytes.Equal(plain, healthy) {
		t.Fatalf("event streams diverge with health enabled: %d vs %d bytes",
			len(plain), len(healthy))
	}
}

// TestHealthEndpointServesValidDoc drives /api/health through the plane's
// handler with and without a provider: both must serve parseable documents,
// and the no-provider default must still identify the runtime (the dashboard
// header depends on it).
func TestHealthEndpointServesValidDoc(t *testing.T) {
	plane := obs.NewPlane(nil)
	col := health.NewCollector(health.CollectorConfig{Period: 10 * time.Millisecond})
	col.Start()
	col.Stop() // at least one sample, then settle
	plane.SetHealthProvider(func() any { return health.BuildDoc(col, nil, nil) })
	doc := getHealthDoc(t, plane)
	if !doc.Enabled || doc.Collector == nil || doc.Collector.Samples < 1 {
		t.Fatalf("enabled doc not served: %+v", doc)
	}

	bare := obs.NewPlane(nil)
	doc = getHealthDoc(t, bare)
	if doc.Enabled {
		t.Fatalf("bare plane claims health enabled: %+v", doc)
	}
	if doc.Runtime.GoVersion == "" {
		t.Fatalf("bare plane doc lacks runtime identity: %+v", doc)
	}
}

// getHealthDoc fetches and validates /api/health from a plane's handler.
func getHealthDoc(t *testing.T, plane *obs.Plane) health.Doc {
	t.Helper()
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/health status %d", resp.StatusCode)
	}
	doc, err := health.ValidateDoc(resp.Body)
	if err != nil {
		t.Fatalf("/api/health served an invalid document: %v", err)
	}
	return doc
}

// TestBrokerEmitZeroSubscribersDoesNotAllocate pins the disabled-plane
// guarantee: with no subscribers, Emit is a single atomic check and
// allocates nothing, even for events carrying a Fields map.
func TestBrokerEmitZeroSubscribersDoesNotAllocate(t *testing.T) {
	b := obs.NewBroker()
	ev := telemetry.Event{K: 7, Kind: "interval", Link: -1,
		Fields: map[string]float64{"deficiency": 0.5}}
	allocs := testing.AllocsPerRun(1000, func() { b.Emit(ev) })
	if allocs != 0 {
		t.Fatalf("Emit with zero subscribers allocates %.1f objects/op, want 0", allocs)
	}
}
