package obs_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rtmac/internal/experiment"
	"rtmac/internal/obs"
	"rtmac/internal/telemetry"
)

// TestPlaneDuringLiveSweep drives a real figure sweep with the HTTP plane
// attached and asserts, over the live server: /metrics stays a valid
// Prometheus payload, /api/progress counts jobs monotonically up to
// completion with a sane ETA, and /events streams simulation events while
// the sweep runs.
func TestPlaneDuringLiveSweep(t *testing.T) {
	plane := obs.NewPlane(nil)
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	// Subscribe to the SSE stream before the sweep starts.
	sseResp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sseLines := make(chan string, 1024)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			select {
			case sseLines <- sc.Text():
			default:
			}
		}
		close(sseLines)
	}()

	opts := experiment.RunOptions{
		Seeds:         3,
		IntervalScale: 0.02,
		Workers:       2,
		Tracker:       plane.Tracker,
		Telemetry:     plane.Registry,
		Events:        plane.Broker,
	}
	sweepErr := make(chan error, 1)
	go func() {
		_, err := experiment.Fig3().Run(opts)
		sweepErr <- err
	}()

	// Poll /api/progress while the sweep runs; done_jobs must never
	// decrease and ETA must never go negative.
	var snaps []obs.ProgressSnapshot
	deadline := time.After(2 * time.Minute)
	for {
		resp, err := http.Get(srv.URL + "/api/progress")
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.ProgressSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
		select {
		case err := <-sweepErr:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("sweep did not finish in time")
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}
	last := plane.Tracker.Snapshot()
	if last.TotalJobs == 0 || last.DoneJobs != last.TotalJobs {
		t.Fatalf("final progress %d/%d, want complete", last.DoneJobs, last.TotalJobs)
	}
	if last.ETASec != 0 {
		t.Fatalf("ETA after completion: %v", last.ETASec)
	}
	if len(last.Figures) != 1 || last.Figures[0].ID != "fig3" || !last.Figures[0].Finished {
		t.Fatalf("figure state: %+v", last.Figures)
	}
	prev := -1
	sawPartial := false
	for i, s := range snaps {
		if s.DoneJobs < prev {
			t.Fatalf("snapshot %d: done_jobs went backwards (%d after %d)", i, s.DoneJobs, prev)
		}
		prev = s.DoneJobs
		if s.ETASec < 0 || s.ElapsedSec < 0 || s.JobsPerSec < 0 {
			t.Fatalf("snapshot %d: negative rate fields: %+v", i, s)
		}
		if s.DoneJobs > 0 && s.DoneJobs < s.TotalJobs {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Logf("note: no mid-sweep snapshot observed across %d polls (fast machine)", len(snaps))
	}

	// /metrics over the live server must be a valid exposition with the
	// simulators' metrics in it.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	n, err := telemetry.ValidatePrometheus(strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("live /metrics invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("live /metrics empty")
	}

	// The SSE stream must have carried simulation events during the sweep.
	timeout := time.After(5 * time.Second)
	events := 0
	for events == 0 {
		select {
		case line, ok := <-sseLines:
			if !ok {
				t.Fatal("SSE stream closed without events")
			}
			if strings.HasPrefix(line, "data: ") {
				var ev telemetry.Event
				if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
					t.Fatalf("bad SSE event %q: %v", line, err)
				}
				if ev.Kind == "" {
					t.Fatalf("event without kind: %q", line)
				}
				events++
			}
		case <-timeout:
			t.Fatal("no SSE events received during sweep")
		}
	}
}
