package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"time"

	"rtmac/internal/telemetry"
)

// Plane bundles the HTTP observability endpoints around one telemetry
// registry, one progress tracker and one event broker:
//
//	/             embedded auto-refreshing HTML dashboard
//	/healthz      liveness probe, returns "ok"
//	/metrics      Prometheus text exposition of the registry
//	/api/progress ProgressSnapshot as JSON
//	/events       Server-Sent Events tail of the telemetry event stream
//
// Construct with NewPlane, then either Start it on a listen address or mount
// Handler() under an existing server (tests use httptest).
type Plane struct {
	Registry *telemetry.Registry
	Tracker  *Tracker
	Broker   *Broker

	srv *http.Server
	ln  net.Listener
	// links, when set, produces the /api/links document (per-link miss
	// attribution and debt timelines). The provider must be safe to call
	// concurrently with the simulation; obs stays decoupled from the journey
	// package by treating the document as opaque JSON-marshalable data.
	links func() any
	// runs, when set, produces the /api/runs document (the run-ledger
	// history: past records and cross-run metric trajectories). Like links,
	// the document is opaque JSON so obs stays decoupled from the ledger.
	runs func() any
	// health, when set, produces the /api/health document (runtime identity,
	// GC/scheduler telemetry, watchdog verdict, profile-ring state). Opaque
	// JSON again, so obs stays decoupled from internal/health.
	health func() any
	// compare, when set, produces the /api/compare document for two ledger
	// references (the differential view of two recorded runs). Opaque JSON,
	// decoupling obs from the ledger's diff schema.
	compare func(refA, refB string) any
	// alerts, when set, produces the /api/alerts document (the watch
	// engine's live SLO conformance board: firing/resolved transitions and
	// per-detector counts). Opaque JSON, decoupling obs from internal/watch.
	alerts func() any
}

// SetLinksProvider installs the /api/links document source. A nil provider
// (or none) makes the endpoint answer 404.
func (p *Plane) SetLinksProvider(fn func() any) { p.links = fn }

// SetRunsProvider installs the /api/runs document source. A nil provider
// (or none) makes the endpoint answer 404.
func (p *Plane) SetRunsProvider(fn func() any) { p.runs = fn }

// SetCompareProvider installs the /api/compare document source. The provider
// receives the two run references from the request's a= and b= query
// parameters (defaulting to latest~1 and latest). A nil provider (or none)
// makes the endpoint answer 404.
func (p *Plane) SetCompareProvider(fn func(refA, refB string) any) { p.compare = fn }

// SetAlertsProvider installs the /api/alerts document source. A nil provider
// (or none) makes the endpoint answer 404.
func (p *Plane) SetAlertsProvider(fn func() any) { p.alerts = fn }

// SetHealthProvider installs the /api/health document source. Without one
// the endpoint serves a minimal {"enabled": false} document — unlike links
// and runs it never 404s, because the dashboard header polls it for the
// runtime identity block regardless of whether a health plane is attached.
func (p *Plane) SetHealthProvider(fn func() any) { p.health = fn }

// NewPlane builds a plane around reg (a fresh registry if nil) with a new
// tracker and broker.
func NewPlane(reg *telemetry.Registry) *Plane {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Plane{Registry: reg, Tracker: NewTracker(), Broker: NewBroker()}
}

// Handler returns the plane's route table.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", p.handleDashboard)
	mux.HandleFunc("/healthz", p.handleHealthz)
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/api/progress", p.handleProgress)
	mux.HandleFunc("/api/links", p.handleLinks)
	mux.HandleFunc("/api/runs", p.handleRuns)
	mux.HandleFunc("/api/health", p.handleHealth)
	mux.HandleFunc("/api/alerts", p.handleAlerts)
	mux.HandleFunc("/api/compare", p.handleCompare)
	mux.HandleFunc("/history", p.handleHistory)
	mux.HandleFunc("/compare", p.handleComparePage)
	mux.HandleFunc("/events", p.handleEvents)
	// The standard pprof endpoints, mounted explicitly because the plane uses
	// its own mux rather than http.DefaultServeMux. /debug/pprof/profile
	// shares the process CPU profiler with -cpuprofile and the profile ring;
	// whichever starts second gets an error, not a corrupt profile.
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves in a
// background goroutine until Close.
func (p *Plane) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	p.ln = ln
	p.srv = &http.Server{Handler: p.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = p.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, useful with ":0".
func (p *Plane) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests. SSE
// streams are request-scoped and end when their client context is cancelled
// by the shutdown.
func (p *Plane) Close() error {
	if p.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := p.srv.Shutdown(ctx)
	if err != nil {
		err = p.srv.Close()
	}
	p.srv = nil
	p.ln = nil
	return err
}

func (p *Plane) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (p *Plane) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := p.Registry.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.Tracker.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleLinks(w http.ResponseWriter, r *http.Request) {
	if p.links == nil {
		http.Error(w, "no link board attached (run with journeys enabled)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.links()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleRuns(w http.ResponseWriter, _ *http.Request) {
	if p.runs == nil {
		http.Error(w, "no run ledger attached (run with -ledger DIR)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.runs()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var doc any
	if p.health != nil {
		doc = p.health()
	} else {
		// No provider: still identify the process so the dashboard header
		// works on bare planes (tests, embedders).
		doc = struct {
			Enabled bool                   `json:"enabled"`
			Runtime telemetry.BuildRuntime `json:"runtime"`
		}{Runtime: telemetry.RuntimeInfo()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	if p.alerts == nil {
		http.Error(w, "no watch engine attached (run with -watch)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.alerts()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleCompare(w http.ResponseWriter, r *http.Request) {
	if p.compare == nil {
		http.Error(w, "no run ledger attached (run with -ledger DIR)", http.StatusNotFound)
		return
	}
	refA, refB := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if refA == "" {
		refA = "latest~1"
	}
	if refB == "" {
		refB = "latest"
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.compare(refA, refB)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (p *Plane) handleHistory(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, historyHTML)
}

func (p *Plane) handleComparePage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, compareHTML)
}

func (p *Plane) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	ch, cancel := p.Broker.Subscribe(256)
	defer cancel()
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case data := <-ch:
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

func (p *Plane) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}
