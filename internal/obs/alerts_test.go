package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestAlertsEndpointWithoutProvider(t *testing.T) {
	_, srv := newTestPlane(t)
	code, _ := get(t, srv.URL+"/api/alerts")
	if code != http.StatusNotFound {
		t.Fatalf("/api/alerts without provider: status %d, want 404", code)
	}
}

func TestAlertsEndpointServesProviderDocument(t *testing.T) {
	p, srv := newTestPlane(t)
	p.SetAlertsProvider(func() any {
		return map[string]any{
			"enabled": true,
			"alerts":  2,
			"firing":  1,
			"recent": []map[string]any{
				{"detector": "debt_drift", "state": "firing", "k": 499},
			},
		}
	})
	code, body := get(t, srv.URL+"/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("/api/alerts status %d", code)
	}
	var doc struct {
		Enabled bool  `json:"enabled"`
		Alerts  int64 `json:"alerts"`
		Firing  int   `json:"firing"`
		Recent  []struct {
			Detector string `json:"detector"`
			State    string `json:"state"`
			K        int64  `json:"k"`
		} `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !doc.Enabled || doc.Alerts != 2 || doc.Firing != 1 ||
		len(doc.Recent) != 1 || doc.Recent[0].Detector != "debt_drift" {
		t.Fatalf("document mismatch: %+v", doc)
	}
}

// TestDashboardCarriesAlertsPanel pins the dashboard's alerts panel markup so
// a refactor cannot silently drop the watch surface from the UI.
func TestDashboardCarriesAlertsPanel(t *testing.T) {
	_, srv := newTestPlane(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("dashboard status %d", code)
	}
	for _, want := range []string{"alertshead", "refreshAlerts", "/api/alerts"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}
}
