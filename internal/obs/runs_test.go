package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestRunsEndpointWithoutProvider(t *testing.T) {
	_, srv := newTestPlane(t)
	code, _ := get(t, srv.URL+"/api/runs")
	if code != http.StatusNotFound {
		t.Fatalf("/api/runs without provider: status %d, want 404", code)
	}
}

func TestRunsEndpointServesProviderDocument(t *testing.T) {
	p, srv := newTestPlane(t)
	p.SetRunsProvider(func() any {
		return map[string]any{
			"enabled": true,
			"dir":     "/tmp/ledger",
			"runs":    []map[string]any{{"short_id": "abcdef012345", "scenario": "fig3"}},
		}
	})
	code, body := get(t, srv.URL+"/api/runs")
	if code != http.StatusOK {
		t.Fatalf("/api/runs status %d", code)
	}
	var doc struct {
		Enabled bool   `json:"enabled"`
		Dir     string `json:"dir"`
		Runs    []struct {
			ShortID  string `json:"short_id"`
			Scenario string `json:"scenario"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !doc.Enabled || doc.Dir != "/tmp/ledger" || len(doc.Runs) != 1 || doc.Runs[0].Scenario != "fig3" {
		t.Fatalf("document mismatch: %+v", doc)
	}
}

func TestHistoryPageServed(t *testing.T) {
	_, srv := newTestPlane(t)
	code, body := get(t, srv.URL+"/history")
	if code != http.StatusOK {
		t.Fatalf("/history status %d", code)
	}
	for _, want := range []string{"<!DOCTYPE html>", "/api/runs", "run history"} {
		if !strings.Contains(body, want) {
			t.Errorf("history page missing %q", want)
		}
	}
}
