package obs

// compareHTML is the run-compare page: one self-contained document that
// renders /api/compare?a=&b= — the regression sentinel's verdict table for
// two ledger records — with the two references editable and pre-fillable via
// the page's own query string, so history rows can deep-link a comparison.
const compareHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>rtmac run compare</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       background: #101418; color: #d6dee6; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
a { color: #6fb3ff; }
table { border-collapse: collapse; margin-top: .5rem; }
td, th { border: 1px solid #2c3440; padding: .25rem .6rem; text-align: left; }
input { font: inherit; background: #1a2027; color: #d6dee6;
        border: 1px solid #2c3440; padding: .2rem .4rem; width: 14rem; }
button { font: inherit; background: #243140; color: #d6dee6;
         border: 1px solid #2c3440; padding: .2rem .8rem; cursor: pointer; }
.regression { color: #f7768e; }
.improved { color: #9ece6a; }
.dirty { color: #e0af68; }
#error { color: #f7768e; }
#verdict { margin-top: 1rem; font-weight: bold; }
.muted { color: #8b98a5; }
</style>
</head>
<body>
<h1>rtmac run compare</h1>
<p><a href="/">dashboard</a> &middot; <a href="/history">history</a> &middot;
   <a id="apilink" href="/api/compare">/api/compare</a></p>
<form id="refs">
  a (baseline) <input id="a" value="latest~1">
  b (candidate) <input id="b" value="latest">
  <button type="submit">compare</button>
</form>
<p id="error" style="display:none"></p>
<h2 id="sideshead" style="display:none">Runs</h2>
<table id="sides" style="display:none"></table>
<p id="verdict" style="display:none"></p>
<h2 id="pointshead" style="display:none">Matched points</h2>
<table id="points" style="display:none"></table>
<p id="missing" class="muted" style="display:none"></p>
<script>
function esc(s) { return String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c])); }
function show(id) { document.getElementById(id).style.display = ''; }
function hide(id) { document.getElementById(id).style.display = 'none'; }
function sideRow(label, s) {
  const r = s.run;
  return '<tr><td>' + label + '</td><td>' + esc(s.ref) + '</td><td>' + esc(r.short_id) +
    '</td><td>' + esc(r.kind) + '</td><td>' + esc(r.tool || '') + '</td><td>' +
    esc(r.scenario || '') + '</td><td>' + esc(r.commit || '') +
    (r.dirty ? ' <span class="dirty">dirty</span>' : '') + '</td><td>' +
    (r.seeds || 0) + '</td><td>' + r.points + '</td></tr>';
}
async function refresh() {
  const a = document.getElementById('a').value, b = document.getElementById('b').value;
  const api = '/api/compare?a=' + encodeURIComponent(a) + '&b=' + encodeURIComponent(b);
  document.getElementById('apilink').href = api;
  ['error', 'sideshead', 'sides', 'verdict', 'pointshead', 'points', 'missing'].forEach(hide);
  let c;
  try {
    const r = await fetch(api);
    if (!r.ok) { showError('no run ledger attached (start with -ledger DIR)'); return; }
    c = await r.json();
  } catch (e) { showError(String(e)); return; }
  if (c.error) { showError(c.error); return; }
  show('sideshead'); show('sides');
  document.getElementById('sides').innerHTML =
    '<tr><th></th><th>ref</th><th>id</th><th>kind</th><th>tool</th><th>scenario</th>' +
    '<th>commit</th><th>seeds</th><th>points</th></tr>' +
    sideRow('a', c.a) + sideRow('b', c.b);
  const rep = c.report || {};
  const v = document.getElementById('verdict');
  v.textContent = (rep.regressions || 0) + ' regressions, ' + (rep.improvements || 0) +
    ' improvements across ' + (rep.points || []).length + ' matched points';
  v.className = rep.regressions ? 'regression' : 'improved';
  show('verdict');
  const pts = rep.points || [];
  if (pts.length) {
    show('pointshead'); show('points');
    const rows = ['<tr><th>point</th><th>metric</th><th>a mean</th><th>b mean</th>' +
      '<th>delta</th><th>verdict</th></tr>'];
    for (const p of pts) {
      let verdict = 'ok', cls = '';
      if (p.regression || p.delay_regression) { verdict = 'REGRESSION: ' + esc(p.why || ''); cls = 'regression'; }
      else if (p.improved) { verdict = 'improved'; cls = 'improved'; }
      rows.push('<tr><td>' + esc(p.figure) + '/' + esc(p.series) + ' x=' + p.x +
        '</td><td>' + esc(p.metric) + '</td><td>' + p.old.mean.toPrecision(5) +
        '</td><td>' + p.new.mean.toPrecision(5) + '</td><td>' +
        (p.rel_delta * 100).toFixed(1) + '%</td><td class="' + cls + '">' + verdict + '</td></tr>');
    }
    document.getElementById('points').innerHTML = rows.join('');
  }
  const missing = (rep.missing_old || []).map(k => k + ' only in b')
    .concat((rep.missing_new || []).map(k => k + ' only in a'));
  if (missing.length) {
    const m = document.getElementById('missing');
    m.textContent = missing.join('; '); show('missing');
  }
}
function showError(msg) {
  const el = document.getElementById('error');
  el.textContent = msg; show('error');
}
document.getElementById('refs').addEventListener('submit', e => {
  e.preventDefault();
  const q = new URLSearchParams({
    a: document.getElementById('a').value, b: document.getElementById('b').value });
  history.replaceState(null, '', '/compare?' + q);
  refresh();
});
const params = new URLSearchParams(location.search);
if (params.get('a')) document.getElementById('a').value = params.get('a');
if (params.get('b')) document.getElementById('b').value = params.get('b');
refresh();
</script>
</body>
</html>
`
