package obs

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestLinksEndpointWithoutProvider(t *testing.T) {
	_, srv := newTestPlane(t)
	code, _ := get(t, srv.URL+"/api/links")
	if code != http.StatusNotFound {
		t.Fatalf("/api/links without provider: status %d, want 404", code)
	}
}

func TestLinksEndpointServesProviderDocument(t *testing.T) {
	p, srv := newTestPlane(t)
	p.SetLinksProvider(func() any {
		return map[string]any{
			"enabled": true,
			"links":   []map[string]any{{"link": 0, "swaps_up": 3}},
		}
	})
	code, body := get(t, srv.URL+"/api/links")
	if code != http.StatusOK {
		t.Fatalf("/api/links status %d", code)
	}
	var doc struct {
		Enabled bool `json:"enabled"`
		Links   []struct {
			Link    int   `json:"link"`
			SwapsUp int64 `json:"swaps_up"`
		} `json:"links"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !doc.Enabled || len(doc.Links) != 1 || doc.Links[0].SwapsUp != 3 {
		t.Fatalf("document mismatch: %+v", doc)
	}
}
