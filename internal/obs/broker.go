package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"rtmac/internal/telemetry"
)

// Broker fans the telemetry event stream out to SSE subscribers. It
// implements telemetry.Sink, so it can be attached anywhere a JSONL writer
// can. With zero subscribers Emit is a single atomic load and returns without
// allocating, which keeps the simulator's interval hot path free when nobody
// is watching; events are serialized to JSON only when at least one
// subscriber exists, so the broker never retains the caller's Fields map.
//
// Slow subscribers lose events rather than stalling the simulation: each
// subscription has a bounded buffer and Emit drops on a full channel.
type Broker struct {
	nsubs atomic.Int32
	mu    sync.Mutex
	subs  map[chan []byte]struct{}
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: make(map[chan []byte]struct{})}
}

// Emit implements telemetry.Sink.
func (b *Broker) Emit(ev telemetry.Event) {
	if b.nsubs.Load() == 0 {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b.mu.Lock()
	for ch := range b.subs {
		select {
		case ch <- data:
		default: // subscriber too slow; drop rather than block the sim
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a new subscriber with the given channel buffer and
// returns its event channel plus a cancel function. Cancel is idempotent and
// must be called when the subscriber goes away.
func (b *Broker) Subscribe(buf int) (<-chan []byte, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan []byte, buf)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	b.nsubs.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, ch)
			b.mu.Unlock()
			b.nsubs.Add(-1)
		})
	}
	return ch, cancel
}

// Subscribers returns the current subscriber count.
func (b *Broker) Subscribers() int { return int(b.nsubs.Load()) }
