package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestCompareEndpointWithoutProvider(t *testing.T) {
	_, srv := newTestPlane(t)
	code, _ := get(t, srv.URL+"/api/compare")
	if code != http.StatusNotFound {
		t.Fatalf("/api/compare without provider: status %d, want 404", code)
	}
}

func TestCompareEndpointPassesRefsAndDefaults(t *testing.T) {
	p, srv := newTestPlane(t)
	var gotA, gotB string
	p.SetCompareProvider(func(refA, refB string) any {
		gotA, gotB = refA, refB
		return map[string]any{"enabled": true, "a_ref": refA, "b_ref": refB}
	})

	code, body := get(t, srv.URL+"/api/compare?a=abcd1234&b=latest~2")
	if code != http.StatusOK {
		t.Fatalf("/api/compare status %d", code)
	}
	if gotA != "abcd1234" || gotB != "latest~2" {
		t.Fatalf("provider got refs (%q, %q)", gotA, gotB)
	}
	var doc struct {
		Enabled bool   `json:"enabled"`
		ARef    string `json:"a_ref"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !doc.Enabled || doc.ARef != "abcd1234" {
		t.Fatalf("document mismatch: %+v", doc)
	}

	// Missing parameters fall back to comparing the two newest records.
	if code, _ := get(t, srv.URL+"/api/compare"); code != http.StatusOK {
		t.Fatalf("/api/compare default status %d", code)
	}
	if gotA != "latest~1" || gotB != "latest" {
		t.Fatalf("default refs (%q, %q), want (latest~1, latest)", gotA, gotB)
	}
}

func TestComparePageServed(t *testing.T) {
	_, srv := newTestPlane(t)
	code, body := get(t, srv.URL+"/compare")
	if code != http.StatusOK {
		t.Fatalf("/compare status %d", code)
	}
	for _, want := range []string{"<!DOCTYPE html>", "/api/compare", "run compare", "latest~1"} {
		if !strings.Contains(body, want) {
			t.Errorf("compare page missing %q", want)
		}
	}
}

func TestHistoryPageLinksCompare(t *testing.T) {
	// The history page must deep-link rows into /compare pre-filled; the
	// contract is string-level since the page is a static template.
	for _, want := range []string{"/compare?a=", "b=latest"} {
		if !strings.Contains(historyHTML, want) {
			t.Errorf("history page missing compare deep-link fragment %q", want)
		}
	}
}
