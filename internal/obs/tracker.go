// Package obs is the live observability plane: an embedded HTTP server that
// exposes the telemetry registry in Prometheus format, sweep progress with
// rate and ETA estimates as JSON, and the structured event stream as
// Server-Sent Events, plus a small self-contained HTML dashboard. It depends
// only on the standard library and the telemetry package, so both the CLI
// simulator and the figure pipeline can attach it without import cycles.
//
// Everything here is wall-clock instrumentation of the *host* process; it
// never touches simulated time.
package obs

import (
	"sync"
	"time"
)

// FigureProgress is the completion state of one figure's job pool.
type FigureProgress struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	TotalJobs int    `json:"total_jobs"`
	DoneJobs  int    `json:"done_jobs"`
	Finished  bool   `json:"finished"`
}

// ProgressSnapshot is the JSON document served at /api/progress.
type ProgressSnapshot struct {
	StartedAt  time.Time `json:"started_at"`
	ElapsedSec float64   `json:"elapsed_sec"`
	TotalJobs  int       `json:"total_jobs"`
	DoneJobs   int       `json:"done_jobs"`
	// JobsPerSec is the mean completion rate since the first FigureStarted;
	// ETASec extrapolates it over the remaining jobs (0 until the rate is
	// known, and once everything is done).
	JobsPerSec float64 `json:"jobs_per_sec"`
	ETASec     float64 `json:"eta_sec"`
	// Intervals/PlannedIntervals report single-run progress when the plane
	// is attached to one simulation instead of a sweep.
	Intervals        int64            `json:"intervals,omitempty"`
	PlannedIntervals int64            `json:"planned_intervals,omitempty"`
	Figures          []FigureProgress `json:"figures"`
}

// Tracker accumulates sweep- and run-level progress. All methods are safe for
// concurrent use; experiment workers call JobCompleted from many goroutines.
// The zero value is not usable; construct with NewTracker.
type Tracker struct {
	mu        sync.Mutex
	now       func() time.Time
	startedAt time.Time
	figures   map[string]*FigureProgress
	order     []string
	totalJobs int
	doneJobs  int
	intervals int64
	planned   int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{now: time.Now, figures: make(map[string]*FigureProgress)}
}

// FigureStarted registers a figure and the number of jobs it will run.
// Implements the experiment package's ProgressTracker interface.
func (t *Tracker) FigureStarted(id, title string, totalJobs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.startedAt.IsZero() {
		t.startedAt = t.now()
	}
	if f, ok := t.figures[id]; ok { // re-run of a known figure: reset it
		t.totalJobs -= f.TotalJobs
		t.doneJobs -= f.DoneJobs
		*f = FigureProgress{ID: id, Title: title, TotalJobs: totalJobs}
	} else {
		t.figures[id] = &FigureProgress{ID: id, Title: title, TotalJobs: totalJobs}
		t.order = append(t.order, id)
	}
	t.totalJobs += totalJobs
}

// JobCompleted records one finished job for the figure.
func (t *Tracker) JobCompleted(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.figures[id]; ok {
		f.DoneJobs++
		t.doneJobs++
	}
}

// FigureFinished marks the figure complete.
func (t *Tracker) FigureFinished(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.figures[id]; ok {
		f.Finished = true
	}
}

// SetPlannedIntervals declares how many intervals a single attached run will
// simulate, enabling interval-level progress in the snapshot.
func (t *Tracker) SetPlannedIntervals(n int64) {
	t.mu.Lock()
	t.planned = n
	if t.startedAt.IsZero() {
		t.startedAt = t.now()
	}
	t.mu.Unlock()
}

// IntervalsDone updates the number of simulated intervals completed so far.
func (t *Tracker) IntervalsDone(n int64) {
	t.mu.Lock()
	if n > t.intervals {
		t.intervals = n
	}
	t.mu.Unlock()
}

// Snapshot returns the current progress document.
func (t *Tracker) Snapshot() ProgressSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := ProgressSnapshot{
		StartedAt:        t.startedAt,
		TotalJobs:        t.totalJobs,
		DoneJobs:         t.doneJobs,
		Intervals:        t.intervals,
		PlannedIntervals: t.planned,
		Figures:          make([]FigureProgress, 0, len(t.order)),
	}
	for _, id := range t.order {
		snap.Figures = append(snap.Figures, *t.figures[id])
	}
	if !t.startedAt.IsZero() {
		snap.ElapsedSec = t.now().Sub(t.startedAt).Seconds()
	}
	if snap.ElapsedSec > 0 && t.doneJobs > 0 {
		snap.JobsPerSec = float64(t.doneJobs) / snap.ElapsedSec
		if remaining := t.totalJobs - t.doneJobs; remaining > 0 {
			snap.ETASec = float64(remaining) / snap.JobsPerSec
		}
	}
	return snap
}
