package obs

// dashboardHTML is the entire status page: one self-contained document with
// inline CSS and script, no external assets, polling /api/progress every two
// seconds and tailing /events over SSE.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>rtmac observability</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       background: #101418; color: #d6dee6; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
a { color: #6fb3ff; }
table { border-collapse: collapse; margin-top: .5rem; }
td, th { border: 1px solid #2c3440; padding: .25rem .6rem; text-align: left; }
.bar { background: #1b222b; width: 16rem; height: .9rem; display: inline-block; }
.bar > div { background: #2f81f7; height: 100%; }
#meta { color: #8b98a5; margin: .3rem 0 0; }
#events { background: #0b0e12; border: 1px solid #2c3440; padding: .5rem;
          height: 14rem; overflow-y: auto; white-space: pre; font-size: .8rem; }
</style>
</head>
<body>
<h1>rtmac observability plane</h1>
<p id="runtime"></p>
<p><a href="/metrics">/metrics</a> &middot; <a href="/api/progress">/api/progress</a>
 &middot; <a href="/events">/events</a> &middot; <a href="/history">/history</a>
 &middot; <a href="/api/health">/api/health</a> &middot; <a href="/debug/pprof/">/debug/pprof</a>
 &middot; <a href="/healthz">/healthz</a></p>
<h2>Progress</h2>
<div>overall <span class="bar"><div id="totalbar" style="width:0%"></div></span>
 <span id="totaltext"></span></div>
<p id="meta"></p>
<table id="figures"><tr><th>figure</th><th>title</th><th>jobs</th><th>state</th></tr></table>
<h2 id="linkshead" style="display:none">Links: miss attribution &amp; debt</h2>
<table id="links" style="display:none"></table>
<h2 id="healthhead" style="display:none">Runtime health</h2>
<table id="health" style="display:none"></table>
<h2 id="alertshead" style="display:none">SLO alerts</h2>
<p id="alertsum" style="display:none"></p>
<table id="alerts" style="display:none"></table>
<h2>Event stream</h2>
<div id="events"></div>
<script>
function esc(s) { return String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c])); }
async function refresh() {
  try {
    const p = await (await fetch('/api/progress')).json();
    let pct = p.total_jobs ? 100 * p.done_jobs / p.total_jobs : 0;
    if (!p.total_jobs && p.planned_intervals) pct = 100 * p.intervals / p.planned_intervals;
    document.getElementById('totalbar').style.width = pct.toFixed(1) + '%';
    document.getElementById('totaltext').textContent = p.total_jobs
      ? p.done_jobs + '/' + p.total_jobs + ' jobs'
      : (p.planned_intervals ? p.intervals + '/' + p.planned_intervals + ' intervals' : 'idle');
    document.getElementById('meta').textContent =
      'elapsed ' + p.elapsed_sec.toFixed(1) + 's' +
      (p.jobs_per_sec ? ' · ' + p.jobs_per_sec.toFixed(2) + ' jobs/s' : '') +
      (p.eta_sec ? ' · ETA ' + p.eta_sec.toFixed(1) + 's' : '');
    const rows = ['<tr><th>figure</th><th>title</th><th>jobs</th><th>state</th></tr>'];
    for (const f of p.figures || []) {
      rows.push('<tr><td>' + esc(f.id) + '</td><td>' + esc(f.title) + '</td><td>' +
        f.done_jobs + '/' + f.total_jobs + '</td><td>' +
        (f.finished ? 'done' : 'running') + '</td></tr>');
    }
    document.getElementById('figures').innerHTML = rows.join('');
  } catch (e) { /* server going away; keep polling */ }
}
const SPARK = '▁▂▃▄▅▆▇█';
function spark(points) {
  if (!points || !points.length) return '';
  const tail = points.slice(-60);
  const vals = tail.map(p => Math.max(0, p.debt));
  const max = Math.max(...vals, 1e-9);
  return tail.map((p, i) => {
    const ch = SPARK[Math.min(7, Math.floor(8 * vals[i] / max))];
    return (p.swap_up || p.swap_down) ? '<b>' + ch + '</b>' : ch;
  }).join('');
}
async function refreshLinks() {
  try {
    const r = await fetch('/api/links');
    if (!r.ok) return;
    const b = await r.json();
    if (!b.enabled) return;
    document.getElementById('linkshead').style.display = '';
    const tbl = document.getElementById('links');
    tbl.style.display = '';
    const rows = ['<tr><th>link</th><th>req</th><th>delivered</th><th>expired</th>' +
      '<th>channel</th><th>collide</th><th>starved</th><th>swaps ↑/↓</th><th>d⁺ timeline</th></tr>'];
    for (const l of b.links || []) {
      const a = l.attribution || {};
      rows.push('<tr><td>' + l.link + '</td><td>' + l.required.toFixed(2) + '</td><td>' +
        (a.delivered || 0) + '</td><td>' + (a.expired_in_queue || 0) + '</td><td>' +
        (a.lost_to_channel || 0) + '</td><td>' + (a.lost_to_collision || 0) + '</td><td>' +
        (a.never_won_contention || 0) + '</td><td>' + l.swaps_up + '/' + l.swaps_down +
        '</td><td>' + spark(l.debt) + '</td></tr>');
    }
    tbl.innerHTML = rows.join('');
  } catch (e) { /* no link board attached; keep polling */ }
}
function nspark(vals) {
  if (!vals || !vals.length) return '';
  const tail = vals.slice(-60);
  const max = Math.max(...tail, 1e-9);
  return tail.map(v => SPARK[Math.min(7, Math.floor(8 * Math.max(0, v) / max))]).join('');
}
function fmtBytes(b) {
  if (b >= 1 << 30) return (b / (1 << 30)).toFixed(2) + ' GiB';
  if (b >= 1 << 20) return (b / (1 << 20)).toFixed(1) + ' MiB';
  if (b >= 1 << 10) return (b / (1 << 10)).toFixed(1) + ' KiB';
  return b + ' B';
}
function fmtNS(ns) {
  if (ns >= 1e9) return (ns / 1e9).toFixed(2) + ' s';
  if (ns >= 1e6) return (ns / 1e6).toFixed(2) + ' ms';
  if (ns >= 1e3) return (ns / 1e3).toFixed(1) + ' µs';
  return ns + ' ns';
}
async function refreshHealth() {
  try {
    const r = await fetch('/api/health');
    if (!r.ok) return;
    const h = await r.json();
    const rt = h.runtime || {};
    document.getElementById('runtime').textContent =
      (rt.go_version || '?') + ' · GOMAXPROCS ' + (rt.gomaxprocs || '?') +
      (rt.hostname ? ' · ' + rt.hostname : '') + ' · pid ' + (rt.pid || '?') +
      (rt.vcs_revision ? ' · ' + rt.vcs_revision.slice(0, 12) + (rt.vcs_modified ? '+dirty' : '') : '');
    document.getElementById('runtime').style.color = '#8b98a5';
    if (!h.enabled || !h.collector) return;
    document.getElementById('healthhead').style.display = '';
    const tbl = document.getElementById('health');
    tbl.style.display = '';
    const c = h.collector;
    const rows = [];
    rows.push('<tr><td>heap</td><td>' + fmtBytes(c.heap_used_bytes) +
      ' used (peak ' + fmtBytes(c.heap_peak_bytes) + ', goal ' + fmtBytes(c.heap_goal_bytes) +
      ')</td><td>' + nspark(c.heap_series) + '</td></tr>');
    rows.push('<tr><td>GC</td><td>' + c.gc_cycles + ' cycles · ' + c.gc_pauses +
      ' pauses · total ~' + fmtNS(c.gc_pause_total_ns) + ' · max ' + fmtNS(c.gc_pause_max_ns) +
      '</td><td>' + nspark(c.pause_series) + '</td></tr>');
    rows.push('<tr><td>scheduler</td><td>p99 latency ' + fmtNS(c.sched_latency_p99_ns) +
      ' · ' + c.goroutines + ' goroutines (peak ' + c.goroutine_peak + ')</td><td></td></tr>');
    if (h.watchdog) {
      const w = h.watchdog;
      rows.push('<tr><td>slot budget</td><td>' + fmtNS(w.budget_ns) + '/interval · ' +
        w.overruns + '/' + w.intervals + ' overruns' +
        (w.overruns ? ' · worst +' + fmtNS(w.max_overrun_ns) +
          ' (gc ' + w.stalls_gc + ' / sched ' + w.stalls_sched + ' / user ' + w.stalls_user + ')' : '') +
        '</td><td></td></tr>');
    }
    if (h.ring) {
      rows.push('<tr><td>profile ring</td><td>' + h.ring.cpu_profiles + ' cpu + ' +
        h.ring.heap_profiles + ' heap profiles in ' + esc(h.ring.dir) +
        (h.ring.last_error ? ' · last error: ' + esc(h.ring.last_error) : '') +
        '</td><td></td></tr>');
    }
    tbl.innerHTML = rows.join('');
  } catch (e) { /* keep polling */ }
}
async function refreshAlerts() {
  try {
    const r = await fetch('/api/alerts');
    if (!r.ok) return;
    const b = await r.json();
    if (!b.enabled) return;
    document.getElementById('alertshead').style.display = '';
    const sum = document.getElementById('alertsum');
    sum.style.display = '';
    const byDet = Object.entries(b.by_detector || {})
      .map(([d, n]) => d + ' ' + n).join(' · ');
    sum.innerHTML = (b.firing
      ? '<b style="color:#ff6b6b">' + b.firing + ' firing</b>'
      : '<span style="color:#3fb950">all SLOs met</span>') +
      ' · ' + b.alerts + ' fired over ' + b.intervals + ' intervals' +
      ' · budget ' + (100 * b.budget).toFixed(0) + '%' +
      (byDet ? ' · ' + byDet : '');
    const tbl = document.getElementById('alerts');
    tbl.style.display = '';
    const rows = ['<tr><th>k</th><th>detector</th><th>severity</th><th>state</th>' +
      '<th>scope</th><th>link</th><th>evidence</th></tr>'];
    for (const a of (b.recent || []).slice(-20).reverse()) {
      const color = a.state === 'firing'
        ? (a.severity === 'critical' ? '#ff6b6b' : '#d4a72c') : '#3fb950';
      rows.push('<tr><td>' + a.k + '</td><td>' + esc(a.detector) + '</td><td>' +
        esc(a.severity) + '</td><td style="color:' + color + '">' + esc(a.state) +
        '</td><td>' + esc(a.scope) + '</td><td>' + (a.link < 0 ? '—' : a.link) +
        '</td><td>' + esc(a.msg) + '</td></tr>');
    }
    tbl.innerHTML = rows.join('');
  } catch (e) { /* no watch engine attached; keep polling */ }
}
refresh();
refreshLinks();
refreshHealth();
refreshAlerts();
setInterval(refresh, 2000);
setInterval(refreshLinks, 2000);
setInterval(refreshHealth, 2000);
setInterval(refreshAlerts, 2000);
const log = document.getElementById('events');
const es = new EventSource('/events');
es.onmessage = ev => {
  log.textContent += ev.data + '\n';
  if (log.textContent.length > 60000) log.textContent = log.textContent.slice(-40000);
  log.scrollTop = log.scrollHeight;
};
</script>
</body>
</html>
`
