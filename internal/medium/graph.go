package medium

import (
	"fmt"
	"math/bits"
)

// Graph is an undirected conflict (interference) graph over the links of a
// medium: an edge {i, j} means links i and j interfere — their transmissions
// may not overlap in time. The complete graph reproduces the paper's
// fully-interfering channel; sparser graphs enable spatial reuse, where
// non-conflicting links transmit concurrently.
//
// The adjacency is stored as per-link bitset rows, so conflict queries and
// closed-neighborhood walks are allocation-free. A Graph is immutable after
// construction and safe to share between a medium, its contention
// coordinator, and the protocols.
type Graph struct {
	n     int
	words int
	// rows is the open adjacency (no self loops): rows[i*words:...] has bit j
	// set iff {i, j} is an edge.
	rows []uint64
	// closed is rows with each link's own bit set — the closed neighborhood
	// used for carrier-sense bookkeeping (a link is "busy" to itself).
	closed   []uint64
	edges    int
	complete bool
}

// NewGraph builds a conflict graph over n links from an edge list. Edges are
// symmetrized (an edge given as [i, j] also blocks [j, i]) and duplicates are
// idempotent; self-loops and out-of-range endpoints are rejected.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("medium: conflict graph needs at least 1 link, got %d", n)
	}
	g := newEmptyGraph(n)
	for _, e := range edges {
		i, j := e[0], e[1]
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("medium: conflict edge [%d, %d] outside [0, %d)", i, j, n)
		}
		if i == j {
			return nil, fmt.Errorf("medium: conflict edge [%d, %d] is a self-loop", i, j)
		}
		g.setEdge(i, j)
	}
	g.finalize()
	return g, nil
}

// CompleteGraph returns the fully-interfering conflict graph over n links —
// the paper's single collision domain. A medium built with it behaves
// identically to one built with no graph at all.
func CompleteGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("medium: complete conflict graph needs at least 1 link, got %d", n))
	}
	g := newEmptyGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.setEdge(i, j)
		}
	}
	g.finalize()
	return g
}

// CliqueGraph returns the union of complete subgraphs over the given link
// sets — e.g. two disjoint cells that do not hear each other. Overlapping
// cliques are allowed; duplicate membership is idempotent.
func CliqueGraph(n int, cliques [][]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("medium: conflict graph needs at least 1 link, got %d", n)
	}
	g := newEmptyGraph(n)
	for ci, clique := range cliques {
		for _, i := range clique {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("medium: clique %d: link %d outside [0, %d)", ci, i, n)
			}
		}
		for a := 0; a < len(clique); a++ {
			for b := a + 1; b < len(clique); b++ {
				if clique[a] != clique[b] {
					g.setEdge(clique[a], clique[b])
				}
			}
		}
	}
	g.finalize()
	return g, nil
}

func newEmptyGraph(n int) *Graph {
	words := (n + 63) / 64
	return &Graph{n: n, words: words, rows: make([]uint64, n*words)}
}

func (g *Graph) setEdge(i, j int) {
	g.rows[i*g.words+j/64] |= 1 << uint(j%64)
	g.rows[j*g.words+i/64] |= 1 << uint(i%64)
}

// finalize derives the closed rows, the edge count, and the completeness
// flag from the open adjacency.
func (g *Graph) finalize() {
	g.closed = make([]uint64, len(g.rows))
	copy(g.closed, g.rows)
	bitsSet := 0
	for i := 0; i < g.n; i++ {
		g.closed[i*g.words+i/64] |= 1 << uint(i%64)
		for w := 0; w < g.words; w++ {
			bitsSet += bits.OnesCount64(g.rows[i*g.words+w])
		}
	}
	g.edges = bitsSet / 2
	g.complete = g.edges == g.n*(g.n-1)/2
}

// Links returns the number of links the graph covers.
func (g *Graph) Links() int { return g.n }

// Edges returns the number of undirected conflict edges.
func (g *Graph) Edges() int { return g.edges }

// Complete reports whether every pair of distinct links conflicts — the
// fully-interfering channel of the seed medium.
func (g *Graph) Complete() bool { return g.complete }

// Conflicts reports whether links i and j interfere. A link always conflicts
// with itself (it cannot overlap its own transmissions).
func (g *Graph) Conflicts(i, j int) bool {
	if i == j {
		return true
	}
	return g.rows[i*g.words+j/64]&(1<<uint(j%64)) != 0
}

// Degree returns the number of links conflicting with link i (i excluded).
func (g *Graph) Degree(i int) int {
	d := 0
	for w := 0; w < g.words; w++ {
		d += bits.OnesCount64(g.rows[i*g.words+w])
	}
	return d
}

// ClosedRow returns link i's closed-neighborhood bitset (i's own bit plus
// every conflicting link). The returned slice aliases the graph's storage
// and must not be modified; callers iterate it allocation-free with
// math/bits.
func (g *Graph) ClosedRow(i int) []uint64 {
	return g.closed[i*g.words : (i+1)*g.words]
}

// EachEdge calls fn once per undirected edge with i < j, in ascending (i, j)
// order — the deterministic order the telemetry stream records conflicts in.
func (g *Graph) EachEdge(fn func(i, j int)) {
	for i := 0; i < g.n; i++ {
		row := g.rows[i*g.words : (i+1)*g.words]
		for w, word := range row {
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if j > i {
					fn(i, j)
				}
			}
		}
	}
}

// String aids debugging.
func (g *Graph) String() string {
	if g.complete {
		return fmt.Sprintf("conflicts(complete, %d links)", g.n)
	}
	return fmt.Sprintf("conflicts(%d links, %d edges)", g.n, g.edges)
}
