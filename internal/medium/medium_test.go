package medium

import (
	"math"
	"testing"
	"testing/quick"

	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

func newTestMedium(t *testing.T, seed uint64, p ...float64) (*sim.Engine, *Medium) {
	t.Helper()
	if len(p) == 0 {
		p = []float64{1, 1, 1, 1}
	}
	eng := sim.NewEngine(seed)
	m, err := New(eng, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, m
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	tests := []struct {
		name string
		eng  *sim.Engine
		p    []float64
	}{
		{"nil engine", nil, []float64{0.5}},
		{"no links", eng, nil},
		{"zero probability", eng, []float64{0.5, 0}},
		{"negative probability", eng, []float64{-0.1}},
		{"probability above one", eng, []float64{1.1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.eng, tc.p); err == nil {
				t.Fatal("New accepted invalid input")
			}
		})
	}
}

func TestReliableTransmissionDelivers(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	var got Outcome = -1
	m.Start(0, 100, false, func(o Outcome) { got = o })
	if !m.Busy() {
		t.Fatal("channel not busy during transmission")
	}
	eng.Run()
	if got != Delivered {
		t.Fatalf("outcome = %v, want delivered", got)
	}
	if m.Busy() {
		t.Fatal("channel busy after transmission ended")
	}
	st := m.Stats()
	if st.Deliveries != 1 || st.Transmissions != 1 || st.BusyTime != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverlapCollidesAll(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	outcomes := map[int]Outcome{}
	m.Start(0, 100, false, func(o Outcome) { outcomes[0] = o })
	eng.After(50, func() {
		m.Start(1, 100, false, func(o Outcome) { outcomes[1] = o })
	})
	eng.Run()
	if outcomes[0] != Collided || outcomes[1] != Collided {
		t.Fatalf("outcomes = %v, want both collided", outcomes)
	}
	if m.Stats().Collisions != 2 {
		t.Fatalf("collisions = %d, want 2", m.Stats().Collisions)
	}
}

func TestSimultaneousStartsCollide(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	outcomes := map[int]Outcome{}
	eng.ScheduleAt(10, func() {
		m.Start(0, 100, false, func(o Outcome) { outcomes[0] = o })
		m.Start(1, 100, false, func(o Outcome) { outcomes[1] = o })
		m.Start(2, 100, false, func(o Outcome) { outcomes[2] = o })
	})
	eng.Run()
	for link, o := range outcomes {
		if o != Collided {
			t.Fatalf("link %d outcome = %v, want collided", link, o)
		}
	}
	if len(outcomes) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outcomes))
	}
}

func TestLateJoinerCollidesEarlierLongTransmission(t *testing.T) {
	// Three-way chain: tx A [0,100), tx B [90,190), A and B collide; a third
	// tx C [150, 250) overlaps B only — all three must fail, and the overlap
	// marking must propagate at start time, not resolution time.
	eng, m := newTestMedium(t, 1)
	outcomes := map[int]Outcome{}
	m.Start(0, 100, false, func(o Outcome) { outcomes[0] = o })
	eng.ScheduleAt(90, func() {
		m.Start(1, 100, false, func(o Outcome) { outcomes[1] = o })
	})
	eng.ScheduleAt(150, func() {
		m.Start(2, 100, false, func(o Outcome) { outcomes[2] = o })
	})
	eng.Run()
	for link := 0; link <= 2; link++ {
		if outcomes[link] != Collided {
			t.Fatalf("link %d outcome = %v, want collided", link, outcomes[link])
		}
	}
}

func TestBackToBackTransmissionsDoNotCollide(t *testing.T) {
	// A transmitter chaining a second transmission inside onDone must hold
	// the channel without an idle gap and without self-collision.
	eng, m := newTestMedium(t, 1)
	lis := &recordingListener{}
	m.Subscribe(lis)
	var outcomes []Outcome
	m.Start(0, 100, false, func(o Outcome) {
		outcomes = append(outcomes, o)
		m.Start(0, 100, false, func(o Outcome) { outcomes = append(outcomes, o) })
	})
	eng.Run()
	if len(outcomes) != 2 || outcomes[0] != Delivered || outcomes[1] != Delivered {
		t.Fatalf("outcomes = %v, want two deliveries", outcomes)
	}
	if len(lis.busy) != 1 || len(lis.idle) != 1 {
		t.Fatalf("busy=%v idle=%v, want exactly one transition each", lis.busy, lis.idle)
	}
	if lis.idle[0] != 200 {
		t.Fatalf("idle at %v, want 200", lis.idle[0])
	}
	if m.Stats().BusyTime != 200 {
		t.Fatalf("BusyTime = %v, want 200", m.Stats().BusyTime)
	}
}

func TestEmptyFrameAlwaysSucceedsWithoutCollision(t *testing.T) {
	eng, m := newTestMedium(t, 1, 0.0001, 0.0001)
	var got Outcome = -1
	m.Start(0, 70, true, func(o Outcome) { got = o })
	eng.Run()
	if got != Delivered {
		t.Fatalf("uncollided empty frame outcome = %v, want delivered", got)
	}
	st := m.Stats()
	if st.EmptyFrames != 1 {
		t.Fatalf("EmptyFrames = %d, want 1", st.EmptyFrames)
	}
	if st.Deliveries != 0 {
		t.Fatalf("empty frames must not count as data deliveries, got %d", st.Deliveries)
	}
}

func TestEmptyFrameCanCollide(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	outcomes := map[int]Outcome{}
	m.Start(0, 70, true, func(o Outcome) { outcomes[0] = o })
	m.Start(1, 70, true, func(o Outcome) { outcomes[1] = o })
	eng.Run()
	if outcomes[0] != Collided || outcomes[1] != Collided {
		t.Fatalf("outcomes = %v, want both collided", outcomes)
	}
}

func TestUnreliableChannelMatchesSuccessProbability(t *testing.T) {
	const p = 0.7
	const trials = 20000
	eng, m := newTestMedium(t, 99, p)
	delivered := 0
	var next func()
	i := 0
	next = func() {
		if i >= trials {
			return
		}
		i++
		m.Start(0, 10, false, func(o Outcome) {
			if o == Delivered {
				delivered++
			}
			next()
		})
	}
	next()
	eng.Run()
	got := float64(delivered) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("empirical delivery rate %v, want ~%v", got, p)
	}
}

func TestDoubleTransmitSameLinkPanics(t *testing.T) {
	_, m := newTestMedium(t, 1)
	m.Start(0, 100, false, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start on the same link did not panic")
		}
	}()
	m.Start(0, 100, false, nil)
}

func TestStartValidationPanics(t *testing.T) {
	_, m := newTestMedium(t, 1)
	for name, fn := range map[string]func(){
		"negative link":  func() { m.Start(-1, 10, false, nil) },
		"link too large": func() { m.Start(4, 10, false, nil) },
		"zero duration":  func() { m.Start(0, 0, false, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

type recordingListener struct {
	busy []sim.Time
	idle []sim.Time
}

func (r *recordingListener) ChannelBusy(at sim.Time) { r.busy = append(r.busy, at) }
func (r *recordingListener) ChannelIdle(at sim.Time) { r.idle = append(r.idle, at) }

func TestListenerSeesTransitions(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	lis := &recordingListener{}
	m.Subscribe(lis)
	eng.ScheduleAt(10, func() { m.Start(0, 100, false, nil) })
	eng.ScheduleAt(300, func() { m.Start(1, 50, false, nil) })
	eng.Run()
	if len(lis.busy) != 2 || lis.busy[0] != 10 || lis.busy[1] != 300 {
		t.Fatalf("busy transitions = %v, want [10 300]", lis.busy)
	}
	if len(lis.idle) != 2 || lis.idle[0] != 110 || lis.idle[1] != 350 {
		t.Fatalf("idle transitions = %v, want [110 350]", lis.idle)
	}
}

func TestListenerNotNotifiedDuringOverlap(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	lis := &recordingListener{}
	m.Subscribe(lis)
	m.Start(0, 100, false, nil)
	eng.ScheduleAt(50, func() { m.Start(1, 100, false, nil) })
	eng.Run()
	if len(lis.busy) != 1 {
		t.Fatalf("busy transitions = %v, want exactly one", lis.busy)
	}
	if len(lis.idle) != 1 || lis.idle[0] != 150 {
		t.Fatalf("idle transitions = %v, want [150]", lis.idle)
	}
	if m.Stats().BusyTime != 150 {
		t.Fatalf("BusyTime = %v, want union 150", m.Stats().BusyTime)
	}
}

// Property: with any set of non-overlapping transmissions, none collide; the
// medium must never report success for overlapping ones.
func TestOverlapDetectionProperty(t *testing.T) {
	prop := func(gaps []uint8, overlapAt uint8) bool {
		eng, m := newTestMedium(t, 5, 1, 1)
		collisions := 0
		at := sim.Time(0)
		for _, g := range gaps {
			start := at
			duration := sim.Time(g%50) + 20 // duration 20..69
			gap := sim.Time(g%7) + 1        // gap 1..7 after the transmission
			eng.ScheduleAt(start, func() {
				m.Start(0, duration, false, func(o Outcome) {
					if o == Collided {
						collisions++
					}
				})
			})
			at += duration + gap
		}
		eng.Run()
		return collisions == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Delivered, "delivered"},
		{Lost, "lost"},
		{Collided, "collided"},
		{Outcome(9), "Outcome(9)"},
	}
	for _, tc := range tests {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.o), got, tc.want)
		}
	}
}

func TestAirtimeAccounting(t *testing.T) {
	eng, m := newTestMedium(t, 1, 1, 1, 1)
	// One clean data exchange of 100us.
	m.Start(0, 100, false, nil)
	eng.Run()
	// One clean empty frame of 70us, starting at 100.
	m.Start(1, 70, true, nil)
	eng.Run()
	// Two overlapping data transmissions: 50us and 80us starting together.
	m.Start(0, 50, false, nil)
	m.Start(2, 80, false, nil)
	eng.Run()
	at := m.Airtime()
	if at.Data != 100 {
		t.Errorf("data airtime = %v, want 100", at.Data)
	}
	if at.Empty != 70 {
		t.Errorf("empty airtime = %v, want 70", at.Empty)
	}
	if at.Collided != 50+80 {
		t.Errorf("collided airtime = %v, want 130 (summed, not union)", at.Collided)
	}
	// Union busy time: 100 + 70 + 80 (the collision burst spans 80us).
	if at.Busy != 250 {
		t.Errorf("busy airtime = %v, want 250 (union)", at.Busy)
	}
	if got := at.Utilization(eng.Now()); got != float64(250)/float64(250) {
		t.Errorf("utilization = %v, want 1", got)
	}
	if got := m.Stats().BusyTime; got != at.Busy {
		t.Errorf("Stats().BusyTime = %v disagrees with Airtime().Busy = %v", got, at.Busy)
	}
}

func TestStatsRoutedThroughRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := sim.NewEngine(1)
	m, err := New(eng, []float64{1, 1}, WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if m.Registry() != reg {
		t.Fatal("medium did not adopt the shared registry")
	}
	m.Start(0, 100, false, nil)
	eng.Run()
	if got := reg.Counter("rtmac_tx_total", "").Value(); got != 1 {
		t.Errorf("registry rtmac_tx_total = %d, want 1", got)
	}
	if got := reg.Counter("rtmac_tx_delivered_total", "").Value(); got != 1 {
		t.Errorf("registry rtmac_tx_delivered_total = %d, want 1", got)
	}
	st := m.Stats()
	if st.Transmissions != 1 || st.Deliveries != 1 {
		t.Errorf("Stats() compatibility view = %+v, want 1 transmission / 1 delivery", st)
	}
}

func TestStatsMidFlightPanics(t *testing.T) {
	_, m := newTestMedium(t, 1)
	m.Start(0, 100, false, func(Outcome) {})
	for name, read := range map[string]func(){
		"Stats":   func() { m.Stats() },
		"Airtime": func() { m.Airtime() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s read mid-transmission did not panic", name)
				}
			}()
			read()
		}()
	}
}

func TestStatsQuiescentAfterRun(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	m.Start(0, 100, false, func(Outcome) {})
	eng.Run()
	// At an interval boundary the reads are legal and must not panic.
	if m.Stats().Transmissions != 1 {
		t.Fatal("stats lost the transmission")
	}
	if m.Airtime().Busy != 100 {
		t.Fatal("airtime lost the busy span")
	}
}
