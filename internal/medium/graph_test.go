package medium

import (
	"math/bits"
	"testing"
)

func TestNewGraphValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		links int
		edges [][2]int
	}{
		{"zero-links", 0, nil},
		{"negative-links", -1, nil},
		{"self-loop", 3, [][2]int{{1, 1}}},
		{"out-of-range", 3, [][2]int{{0, 3}}},
		{"negative-endpoint", 3, [][2]int{{-1, 2}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGraph(tc.links, tc.edges); err == nil {
				t.Errorf("NewGraph(%d, %v) accepted, want error", tc.links, tc.edges)
			}
		})
	}
}

func TestGraphDedupAndSymmetry(t *testing.T) {
	g, err := NewGraph(4, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Edges(); got != 2 {
		t.Errorf("duplicate and reversed pairs should collapse: %d edges, want 2", got)
	}
	for i := 0; i < 4; i++ {
		if !g.Conflicts(i, i) {
			t.Errorf("link %d must conflict with itself", i)
		}
		for j := 0; j < 4; j++ {
			if g.Conflicts(i, j) != g.Conflicts(j, i) {
				t.Errorf("asymmetric adjacency between %d and %d", i, j)
			}
		}
	}
	if !g.Conflicts(0, 1) || !g.Conflicts(2, 3) || g.Conflicts(0, 2) {
		t.Error("wrong edge set")
	}
}

func TestCompleteGraph(t *testing.T) {
	g := CompleteGraph(5)
	if !g.Complete() {
		t.Fatal("CompleteGraph is not Complete")
	}
	if got, want := g.Edges(), 10; got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	// An explicit edge list covering every pair is recognized as complete.
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	e, err := NewGraph(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Complete() {
		t.Error("explicit all-pairs edge list not recognized as complete")
	}
	// A single link has no pairs to conflict: vacuously complete.
	if !CompleteGraph(1).Complete() {
		t.Error("single-link graph should be complete")
	}
	sparse, err := NewGraph(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Complete() {
		t.Error("sparse graph reported complete")
	}
}

func TestCliqueGraph(t *testing.T) {
	g, err := CliqueGraph(6, [][]int{{0, 1, 2}, {3, 4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Edges(), 4; got != want { // C(3,2) + C(2,2)
		t.Errorf("edges = %d, want %d", got, want)
	}
	if !g.Conflicts(0, 2) || !g.Conflicts(3, 4) {
		t.Error("intra-clique pair not adjacent")
	}
	if g.Conflicts(2, 3) || g.Conflicts(4, 5) {
		t.Error("cross-clique pair adjacent")
	}
	if _, err := CliqueGraph(3, [][]int{{0, 3}}); err == nil {
		t.Error("out-of-range clique member accepted")
	}
}

func TestGraphEachEdgeOrder(t *testing.T) {
	g, err := NewGraph(5, [][2]int{{3, 4}, {0, 2}, {2, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var got [][2]int
	g.EachEdge(func(i, j int) { got = append(got, [2]int{i, j}) })
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("EachEdge visited %d edges, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("edge %d = %v, want %v (lower-endpoint ascending order)", k, got[k], want[k])
		}
	}
}

func TestGraphClosedRowAndDegree(t *testing.T) {
	g, err := NewGraph(70, [][2]int{{0, 1}, {0, 69}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	row := g.ClosedRow(0)
	if len(row) != 2 { // 70 links -> two 64-bit words
		t.Fatalf("ClosedRow word count = %d, want 2", len(row))
	}
	pop := 0
	for _, w := range row {
		pop += bits.OnesCount64(w)
	}
	if pop != 3 { // self + two neighbors
		t.Errorf("closed neighborhood popcount = %d, want 3", pop)
	}
	if row[0]&1 == 0 {
		t.Error("closed row missing the self bit")
	}
	if row[1]&(1<<5) == 0 {
		t.Error("closed row missing neighbor 69 (bit 5 of word 1)")
	}
}

func TestGraphString(t *testing.T) {
	if got, want := CompleteGraph(4).String(), "conflicts(complete, 4 links)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	g, err := NewGraph(4, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.String(), "conflicts(4 links, 1 edges)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
