// Package medium simulates the shared wireless channel of a fully-interfering
// ad hoc network (complete conflict graph), per Section II-A of the paper:
//
//   - If two or more links transmit with any overlap in time, all overlapping
//     transmissions collide and fail.
//   - A non-interfered data transmission on link n succeeds with probability
//     p_n (unreliable channel); the transmitter learns the outcome at the end
//     of the exchange (the ACK is part of the modelled airtime).
//   - Every device can carrier-sense: Busy reports whether any transmission
//     is in flight, and subscribers are told about busy/idle transitions.
package medium

import (
	"fmt"
	"math/bits"

	"rtmac/internal/sim"
	"rtmac/internal/telemetry"
)

// Outcome is the result of one transmission as observed by the transmitter.
type Outcome int

// Transmission outcomes.
const (
	// Delivered means the packet was received and acknowledged.
	Delivered Outcome = iota
	// Lost means the channel erased the packet (Bernoulli failure).
	Lost
	// Collided means the transmission overlapped another and was destroyed.
	Collided
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Lost:
		return "lost"
	case Collided:
		return "collided"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Listener observes channel busy/idle transitions, the simulated analogue of
// carrier sensing hardware.
type Listener interface {
	// ChannelBusy fires when the channel transitions idle -> busy.
	ChannelBusy(at sim.Time)
	// ChannelIdle fires when the channel transitions busy -> idle.
	ChannelIdle(at sim.Time)
}

// LinkListener observes per-link carrier-sense transitions under a conflict
// graph: a link is busy while any transmission in its closed neighborhood
// (itself or a conflicting link) is in flight. Only meaningful on a medium
// built with WithGraph; without a graph every link shares the global
// Listener view.
type LinkListener interface {
	// LinkBusy fires when link's neighborhood transitions idle -> busy.
	LinkBusy(link int, at sim.Time)
	// LinkIdle fires when link's neighborhood transitions busy -> idle.
	LinkIdle(link int, at sim.Time)
}

// Transmission is one in-flight or completed channel occupancy.
//
// The medium recycles Transmission objects through an internal free list; the
// pointer returned by Start is only valid until the transmission ends. Trace
// hooks receive a value copy, which they may keep.
type Transmission struct {
	Link     int
	Empty    bool // priority-claiming frame with no payload
	Start    sim.Time
	End      sim.Time
	collided bool
	onDone   func(Outcome)
	// finishFn is the object's own end-of-transmission event callback, built
	// once per pooled object so Start schedules the finish without allocating
	// a fresh closure per transmission.
	finishFn func()
}

// Stats aggregates channel-level counters for reporting and tests. It is a
// compatibility view over the telemetry registry, which is the counters'
// single source of truth (see Medium.Registry).
type Stats struct {
	// Transmissions counts every started transmission, including empty frames.
	Transmissions int
	// EmptyFrames counts started priority-claiming frames.
	EmptyFrames int
	// Deliveries counts data transmissions that succeeded.
	Deliveries int
	// Losses counts data transmissions erased by the channel.
	Losses int
	// Collisions counts transmissions destroyed by overlap.
	Collisions int
	// BusyTime accumulates the union of channel-occupancy periods.
	BusyTime sim.Time
}

// Airtime breaks channel occupancy down by what the time was spent on.
// Busy is the union of occupancy periods (overlaps counted once); the other
// fields are summed per-transmission airtimes, so during a collision they
// exceed the wall-clock span they cover.
type Airtime struct {
	// Busy is the union of all occupancy periods.
	Busy sim.Time
	// Data is the summed airtime of non-collided data exchanges
	// (delivered or channel-lost).
	Data sim.Time
	// Empty is the summed airtime of non-collided priority-claiming frames.
	Empty sim.Time
	// Collided is the summed airtime of transmissions destroyed by overlap.
	Collided sim.Time
}

// Utilization returns the fraction of the simulated span [0, now] the
// channel was occupied (0 when now is zero).
func (a Airtime) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(a.Busy) / float64(now)
}

// channelMetrics are the medium's registry-backed counters.
type channelMetrics struct {
	transmissions *telemetry.Counter
	emptyFrames   *telemetry.Counter
	deliveries    *telemetry.Counter
	losses        *telemetry.Counter
	collisions    *telemetry.Counter
	busyUS        *telemetry.Counter
	dataUS        *telemetry.Counter
	emptyUS       *telemetry.Counter
	collidedUS    *telemetry.Counter
}

func newChannelMetrics(reg *telemetry.Registry) channelMetrics {
	return channelMetrics{
		transmissions: reg.Counter("rtmac_tx_total", "started transmissions, empty frames included"),
		emptyFrames:   reg.Counter("rtmac_tx_empty_total", "started priority-claiming empty frames"),
		deliveries:    reg.Counter("rtmac_tx_delivered_total", "data transmissions delivered and acknowledged"),
		losses:        reg.Counter("rtmac_tx_lost_total", "data transmissions erased by the channel"),
		collisions:    reg.Counter("rtmac_tx_collided_total", "transmissions destroyed by overlap"),
		busyUS:        reg.Counter("rtmac_airtime_busy_us_total", "microseconds the channel was occupied (union of occupancy periods)"),
		dataUS:        reg.Counter("rtmac_airtime_data_us_total", "summed airtime of non-collided data exchanges, microseconds"),
		emptyUS:       reg.Counter("rtmac_airtime_empty_us_total", "summed airtime of non-collided empty frames, microseconds"),
		collidedUS:    reg.Counter("rtmac_airtime_collided_us_total", "summed airtime of collided transmissions, microseconds"),
	}
}

// Medium is the shared channel. It is bound to one engine and is not safe
// for concurrent use.
type Medium struct {
	eng       *sim.Engine
	links     int
	model     Model
	rng       *sim.RNG
	active    []*Transmission
	txFree    []*Transmission
	listeners []Listener
	busySince sim.Time
	inFinish  bool
	reg       *telemetry.Registry
	met       channelMetrics
	traces    []func(tx Transmission, outcome Outcome)
	// graph, when non-nil, is the conflict graph: only conflicting overlaps
	// collide, and per-link neighborhood busy state is tracked for spatial
	// reuse. nil preserves the seed behavior (complete conflict graph) on the
	// exact legacy code path.
	graph         *Graph
	linkListeners []LinkListener
	// nbrBusy[n] counts in-flight transmissions in link n's closed
	// neighborhood; pendingIdle[n] marks a neighborhood that emptied during a
	// finish, so a transmission chained from onDone keeps the link
	// continuously busy with no idle/busy flap (the per-link analogue of
	// inFinish).
	nbrBusy     []int32
	pendingIdle []bool
}

// Option configures a Medium at construction.
type Option func(*Medium)

// WithRegistry routes the channel counters into the given telemetry
// registry instead of a private one, so one registry can expose the whole
// simulation.
func WithRegistry(reg *telemetry.Registry) Option {
	return func(m *Medium) {
		if reg != nil {
			m.reg = reg
		}
	}
}

// WithGraph sets the conflict graph governing which links interfere. A nil
// graph (the default) means the fully-interfering channel of the paper and
// keeps the medium on the seed code path; a complete graph is semantically
// identical but exercises the generalized path. Non-complete graphs enable
// spatial reuse: non-conflicting links transmit concurrently without
// colliding.
func WithGraph(g *Graph) Option {
	return func(m *Medium) {
		m.graph = g
	}
}

// New returns a channel shared by len(success) links with the paper's
// static reliability model; success[n] is the non-interfered delivery
// probability p_n of link n.
func New(eng *sim.Engine, success []float64, opts ...Option) (*Medium, error) {
	if len(success) == 0 {
		return nil, fmt.Errorf("medium: no links")
	}
	for n, p := range success {
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("medium: link %d: success probability %v outside (0, 1]", n, p)
		}
	}
	ps := make([]float64, len(success))
	copy(ps, success)
	return NewWithModel(eng, len(ps), staticModel{probs: ps}, opts...)
}

// NewWithModel returns a channel whose delivery probabilities come from an
// arbitrary (possibly time-varying) model.
func NewWithModel(eng *sim.Engine, links int, model Model, opts ...Option) (*Medium, error) {
	if eng == nil {
		return nil, fmt.Errorf("medium: nil engine")
	}
	if links <= 0 {
		return nil, fmt.Errorf("medium: no links")
	}
	if model == nil {
		return nil, fmt.Errorf("medium: nil channel model")
	}
	m := &Medium{
		eng:   eng,
		links: links,
		model: model,
		rng:   eng.RNG("medium"),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.graph != nil {
		if m.graph.Links() != links {
			return nil, fmt.Errorf("medium: conflict graph covers %d links, medium has %d",
				m.graph.Links(), links)
		}
		m.nbrBusy = make([]int32, links)
		m.pendingIdle = make([]bool, links)
	}
	if m.reg == nil {
		m.reg = telemetry.NewRegistry()
	}
	m.met = newChannelMetrics(m.reg)
	return m, nil
}

// Links returns the number of links sharing the channel.
func (m *Medium) Links() int { return m.links }

// SuccessProb returns the long-run mean delivery probability of link n —
// the p_n the protocols' debt weights use. Under the static model this is
// the instantaneous probability too.
func (m *Medium) SuccessProb(n int) float64 { return m.model.Mean(n) }

// Busy reports whether any transmission is currently in flight — the carrier-
// sense primitive.
func (m *Medium) Busy() bool { return len(m.active) > 0 }

// Graph returns the conflict graph, or nil for the fully-interfering
// default.
func (m *Medium) Graph() *Graph { return m.graph }

// BusyFor reports whether link n's closed neighborhood has a transmission in
// flight — the per-link carrier-sense primitive under a conflict graph.
// Without a graph every link hears the whole channel and BusyFor equals
// Busy.
func (m *Medium) BusyFor(n int) bool {
	if m.graph == nil {
		return len(m.active) > 0
	}
	return m.nbrBusy[n] > 0
}

// ActiveCount returns the number of overlapping in-flight transmissions.
func (m *Medium) ActiveCount() int { return len(m.active) }

// requireQuiescent enforces the read contract of the aggregate views: they
// are only consistent when no transmission is in flight (BusyTime of the
// current occupancy period is not yet accumulated, and in-flight outcomes
// are unresolved). Reading mid-transmission used to yield silently stale
// numbers; it now panics, like the other usage errors in this package.
func (m *Medium) requireQuiescent(what string) {
	if len(m.active) > 0 {
		panic(fmt.Sprintf(
			"medium: %s read with %d transmissions in flight; call it at an interval boundary (e.g. after Run returns)",
			what, len(m.active)))
	}
}

// Stats returns a copy of the channel counters, read from the telemetry
// registry they live in. It must be called while the channel is quiescent —
// between intervals or after Run — and panics mid-transmission.
func (m *Medium) Stats() Stats {
	m.requireQuiescent("Stats")
	return Stats{
		Transmissions: int(m.met.transmissions.Value()),
		EmptyFrames:   int(m.met.emptyFrames.Value()),
		Deliveries:    int(m.met.deliveries.Value()),
		Losses:        int(m.met.losses.Value()),
		Collisions:    int(m.met.collisions.Value()),
		BusyTime:      sim.Time(m.met.busyUS.Value()),
	}
}

// Airtime returns the channel-occupancy accounting: union busy time plus
// summed per-category airtimes. Like Stats, it must be called while the
// channel is quiescent and panics mid-transmission.
func (m *Medium) Airtime() Airtime {
	m.requireQuiescent("Airtime")
	return Airtime{
		Busy:     sim.Time(m.met.busyUS.Value()),
		Data:     sim.Time(m.met.dataUS.Value()),
		Empty:    sim.Time(m.met.emptyUS.Value()),
		Collided: sim.Time(m.met.collidedUS.Value()),
	}
}

// Registry returns the telemetry registry holding the channel counters —
// the medium's own private registry unless WithRegistry supplied a shared
// one.
func (m *Medium) Registry() *telemetry.Registry { return m.reg }

// Subscribe registers a carrier-sense listener. Listeners are notified in
// subscription order, which keeps runs deterministic.
func (m *Medium) Subscribe(l Listener) {
	m.listeners = append(m.listeners, l)
}

// SubscribeLinks registers a per-link carrier-sense listener. It panics on a
// medium built without a conflict graph: without one there is no per-link
// busy state to observe, and the caller should Subscribe instead.
func (m *Medium) SubscribeLinks(l LinkListener) {
	if m.graph == nil {
		panic("medium: SubscribeLinks on a medium without a conflict graph")
	}
	m.linkListeners = append(m.linkListeners, l)
}

// AddTrace installs a hook invoked once per completed transmission, with a
// copy of the transmission record and its resolved outcome. Hooks run in
// registration order, before the transmitter's onDone callback; multiple
// observers (packet recorders, delay statistics) can coexist.
func (m *Medium) AddTrace(fn func(tx Transmission, outcome Outcome)) {
	if fn != nil {
		m.traces = append(m.traces, fn)
	}
}

// Start begins a transmission of the given duration on link. onDone is
// invoked exactly once, at the instant the transmission ends, with the
// outcome; it runs before any ChannelIdle notification so the transmitter
// can chain another transmission back-to-back without releasing the channel.
func (m *Medium) Start(link int, duration sim.Time, empty bool, onDone func(Outcome)) *Transmission {
	if link < 0 || link >= m.links {
		panic(fmt.Sprintf("medium: link %d out of range [0, %d)", link, m.links))
	}
	if duration <= 0 {
		panic(fmt.Sprintf("medium: non-positive transmission duration %v", duration))
	}
	for _, other := range m.active {
		if other.Link == link {
			panic(fmt.Sprintf("medium: link %d started a transmission while already transmitting", link))
		}
	}
	now := m.eng.Now()
	var tx *Transmission
	if n := len(m.txFree); n > 0 {
		tx = m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		tx.Link, tx.Empty, tx.Start, tx.End = link, empty, now, now+duration
		tx.collided, tx.onDone = false, onDone
	} else {
		tx = &Transmission{
			Link:   link,
			Empty:  empty,
			Start:  now,
			End:    now + duration,
			onDone: onDone,
		}
		fin := tx
		tx.finishFn = func() { m.finish(fin) }
	}
	// Any conflicting overlap destroys every transmission involved; without
	// a graph every pair of links conflicts (the paper's channel).
	if m.graph == nil {
		if len(m.active) > 0 {
			tx.collided = true
			for _, other := range m.active {
				other.collided = true
			}
		}
	} else {
		for _, other := range m.active {
			if m.graph.Conflicts(link, other.Link) {
				tx.collided = true
				other.collided = true
			}
		}
	}
	// A transmission chained from inside a finishing transmission's onDone
	// keeps the channel continuously occupied: no idle/busy transition.
	wasIdle := len(m.active) == 0 && !m.inFinish
	m.active = append(m.active, tx)
	m.met.transmissions.Inc()
	if empty {
		m.met.emptyFrames.Inc()
	}
	if wasIdle {
		m.busySince = now
		for _, l := range m.listeners {
			l.ChannelBusy(now)
		}
	}
	if m.graph != nil {
		m.noteStart(link, now)
	}
	m.eng.ScheduleAt(tx.End, tx.finishFn)
	return tx
}

// noteStart raises the closed-neighborhood busy counts of a starting
// transmission and notifies per-link listeners of idle -> busy transitions.
// A neighborhood that was drained inside the enclosing finish (pendingIdle)
// is simply kept busy: back-to-back occupancy produces no flap.
func (m *Medium) noteStart(link int, now sim.Time) {
	row := m.graph.ClosedRow(link)
	for w, word := range row {
		for word != 0 {
			j := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			m.nbrBusy[j]++
			if m.nbrBusy[j] == 1 {
				if m.pendingIdle[j] {
					m.pendingIdle[j] = false
				} else {
					for _, l := range m.linkListeners {
						l.LinkBusy(j, now)
					}
				}
			}
		}
	}
}

// noteFinishDown lowers the closed-neighborhood busy counts of a finishing
// transmission. Neighborhoods that drain are not declared idle yet — the
// finishing link's onDone may chain a follow-up transmission — but marked
// pendingIdle; noteFinishIdle settles them after onDone ran.
func (m *Medium) noteFinishDown(link int) {
	row := m.graph.ClosedRow(link)
	for w, word := range row {
		for word != 0 {
			j := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			m.nbrBusy[j]--
			if m.nbrBusy[j] == 0 {
				m.pendingIdle[j] = true
			}
		}
	}
}

// noteFinishIdle delivers LinkIdle for every neighborhood of the finished
// transmission that is still drained after onDone had its chance to chain.
func (m *Medium) noteFinishIdle(link int, now sim.Time) {
	row := m.graph.ClosedRow(link)
	for w, word := range row {
		for word != 0 {
			j := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if m.pendingIdle[j] {
				m.pendingIdle[j] = false
				for _, l := range m.linkListeners {
					l.LinkIdle(j, now)
				}
			}
		}
	}
}

func (m *Medium) finish(tx *Transmission) {
	// Remove tx from the active set.
	for i, other := range m.active {
		if other == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	if m.graph != nil {
		// Counts drop before onDone so BusyFor reflects the finished
		// transmission during the callback (matching Busy without a graph);
		// idle notifications wait until after it, like ChannelIdle.
		m.noteFinishDown(tx.Link)
	}
	outcome := m.resolve(tx)
	for _, hook := range m.traces {
		hook(*tx, outcome)
	}
	if tx.onDone != nil {
		// The callback may immediately start a follow-up transmission,
		// keeping the channel busy with no idle gap.
		m.inFinish = true
		tx.onDone(outcome)
		m.inFinish = false
	}
	if len(m.active) == 0 {
		now := m.eng.Now()
		m.met.busyUS.Add(int64(now - m.busySince))
		for _, l := range m.listeners {
			l.ChannelIdle(now)
		}
	}
	if m.graph != nil {
		m.noteFinishIdle(tx.Link, m.eng.Now())
	}
	// Recycle: nothing references tx past this point (Start's return value is
	// dead once the transmission ends, and trace hooks got a value copy).
	tx.onDone = nil
	m.txFree = append(m.txFree, tx)
}

func (m *Medium) resolve(tx *Transmission) Outcome {
	airtime := int64(tx.End - tx.Start)
	if tx.collided {
		m.met.collisions.Inc()
		m.met.collidedUS.Add(airtime)
		return Collided
	}
	if tx.Empty {
		// Empty frames carry no payload and expect no ACK; an uncollided
		// empty frame always serves its priority-claiming purpose.
		m.met.emptyUS.Add(airtime)
		return Delivered
	}
	m.met.dataUS.Add(airtime)
	if m.rng.Bernoulli(m.model.Instantaneous(tx.Link, tx.End)) {
		m.met.deliveries.Inc()
		return Delivered
	}
	m.met.losses.Inc()
	return Lost
}
