package medium

import (
	"math"
	"testing"

	"rtmac/internal/sim"
)

func TestGilbertElliottValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cases := []struct {
		name                              string
		n                                 int
		pGood, pBad, goodToBad, badToGood float64
		period                            sim.Time
	}{
		{"zero links", 0, 0.9, 0.3, 0.1, 0.2, 100},
		{"pGood above 1", 2, 1.1, 0.3, 0.1, 0.2, 100},
		{"pBad zero", 2, 0.9, 0, 0.1, 0.2, 100},
		{"pBad above pGood", 2, 0.3, 0.9, 0.1, 0.2, 100},
		{"bad transition", 2, 0.9, 0.3, -0.1, 0.2, 100},
		{"badToGood zero", 2, 0.9, 0.3, 0.1, 0, 100},
		{"zero period", 2, 0.9, 0.3, 0.1, 0.2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGilbertElliott(eng, tc.n, tc.pGood, tc.pBad,
				tc.goodToBad, tc.badToGood, tc.period); err == nil {
				t.Fatal("invalid parameters accepted")
			}
		})
	}
}

func TestGilbertElliottMean(t *testing.T) {
	eng := sim.NewEngine(1)
	ge, err := NewGilbertElliott(eng, 3, 0.9, 0.3, 0.1, 0.3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// P(bad) = 0.1/0.4 = 0.25; mean = 0.75·0.9 + 0.25·0.3 = 0.75.
	if got := ge.Mean(0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Mean = %v, want 0.75", got)
	}
}

func TestGilbertElliottStatesEvolveAndMatchStationary(t *testing.T) {
	eng := sim.NewEngine(7)
	ge, err := NewGilbertElliott(eng, 1, 0.9, 0.3, 0.05, 0.15, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the instantaneous probability over many periods: the fraction
	// of bad-state samples must approach 0.05/0.20 = 0.25, and both values
	// must appear.
	bad, good := 0, 0
	for step := 1; step <= 200000; step++ {
		switch ge.Instantaneous(0, sim.Time(step)*100) {
		case 0.3:
			bad++
		case 0.9:
			good++
		default:
			t.Fatal("unexpected instantaneous probability")
		}
	}
	frac := float64(bad) / float64(bad+good)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("bad-state fraction %v, want ≈ 0.25", frac)
	}
}

func TestGilbertElliottLazyAdvanceIsConsistent(t *testing.T) {
	// Queries within the same period must return the same value; repeated
	// queries at the same instant must not re-advance the chain.
	eng := sim.NewEngine(9)
	ge, err := NewGilbertElliott(eng, 1, 0.9, 0.3, 0.5, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	a := ge.Instantaneous(0, 1000)
	b := ge.Instantaneous(0, 1000)
	c := ge.Instantaneous(0, 1050) // same period
	if a != b || a != c {
		t.Fatalf("same-period queries differ: %v %v %v", a, b, c)
	}
}

func TestMediumWithFadingModel(t *testing.T) {
	// Empirical delivery rate over a fading channel must approach the
	// model's mean, not either state probability.
	eng := sim.NewEngine(11)
	ge, err := NewGilbertElliott(eng, 1, 0.9, 0.3, 0.1, 0.3, 50)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithModel(eng, 1, ge)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SuccessProb(0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("SuccessProb = %v, want the mean 0.75", got)
	}
	const trials = 40000
	delivered := 0
	var next func()
	i := 0
	next = func() {
		if i >= trials {
			return
		}
		i++
		m.Start(0, 10, false, func(o Outcome) {
			if o == Delivered {
				delivered++
			}
			next()
		})
	}
	next()
	eng.Run()
	rate := float64(delivered) / trials
	if math.Abs(rate-0.75) > 0.02 {
		t.Fatalf("empirical rate %v, want ≈ 0.75", rate)
	}
}

func TestNewWithModelValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := NewWithModel(nil, 1, staticModel{probs: []float64{1}}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewWithModel(eng, 0, staticModel{}); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := NewWithModel(eng, 1, nil); err == nil {
		t.Error("nil model accepted")
	}
}
