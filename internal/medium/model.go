package medium

import (
	"fmt"

	"rtmac/internal/sim"
)

// Model supplies the instantaneous per-link delivery probability. The
// paper's base model is static (Section II-A); a time-varying model lets the
// repository probe robustness beyond the paper's assumptions, in the spirit
// of the fading-channel extensions it cites (Hou, ToN 2014).
type Model interface {
	// Instantaneous returns the delivery probability of link at the given
	// time. Values must stay within (0, 1].
	Instantaneous(link int, at sim.Time) float64
	// Mean returns the long-run average probability of link — what a
	// transmitter would learn from past outcomes and feed into debt
	// weights.
	Mean(link int) float64
}

// staticModel is the paper's model: one constant per link.
type staticModel struct {
	probs []float64
}

func (m staticModel) Instantaneous(link int, _ sim.Time) float64 { return m.probs[link] }
func (m staticModel) Mean(link int) float64                      { return m.probs[link] }

// GilbertElliott is the classical two-state fading model: each link hops
// independently between a Good and a Bad state; transitions are evaluated
// once per Period. Delivery probability is PGood or PBad according to the
// current state.
type GilbertElliott struct {
	// PGood and PBad are the delivery probabilities in each state.
	PGood, PBad float64
	// GoodToBad and BadToGood are per-period transition probabilities.
	GoodToBad, BadToGood float64
	// Period is how often the state may flip.
	Period sim.Time

	rng *sim.RNG
	// Per-link lazy state.
	inBad   []bool
	updated []sim.Time
}

// NewGilbertElliott validates the parameters and prepares per-link chains
// for n links, with randomness drawn from the engine's "channel" stream.
// Each link starts in its stationary state distribution.
func NewGilbertElliott(eng *sim.Engine, n int, pGood, pBad, goodToBad, badToGood float64, period sim.Time) (*GilbertElliott, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("medium: need at least one link, got %d", n)
	case pGood <= 0 || pGood > 1 || pBad <= 0 || pBad > 1:
		return nil, fmt.Errorf("medium: state probabilities (%v, %v) outside (0, 1]", pGood, pBad)
	case pBad > pGood:
		return nil, fmt.Errorf("medium: bad-state probability %v above good-state %v", pBad, pGood)
	case goodToBad < 0 || goodToBad > 1 || badToGood <= 0 || badToGood > 1:
		return nil, fmt.Errorf("medium: transition probabilities (%v, %v) invalid", goodToBad, badToGood)
	case period <= 0:
		return nil, fmt.Errorf("medium: non-positive fading period %v", period)
	}
	ge := &GilbertElliott{
		PGood:     pGood,
		PBad:      pBad,
		GoodToBad: goodToBad,
		BadToGood: badToGood,
		Period:    period,
		rng:       eng.RNG("channel"),
		inBad:     make([]bool, n),
		updated:   make([]sim.Time, n),
	}
	// Stationary start: P(bad) = g2b / (g2b + b2g).
	pBadState := goodToBad / (goodToBad + badToGood)
	for link := range ge.inBad {
		ge.inBad[link] = ge.rng.Bernoulli(pBadState)
	}
	return ge, nil
}

// Instantaneous implements Model, advancing the link's chain lazily to `at`.
func (g *GilbertElliott) Instantaneous(link int, at sim.Time) float64 {
	steps := int((at - g.updated[link]) / g.Period)
	if steps > 0 {
		g.updated[link] += sim.Time(steps) * g.Period
		for i := 0; i < steps; i++ {
			if g.inBad[link] {
				if g.rng.Bernoulli(g.BadToGood) {
					g.inBad[link] = false
				}
			} else if g.rng.Bernoulli(g.GoodToBad) {
				g.inBad[link] = true
			}
		}
	}
	if g.inBad[link] {
		return g.PBad
	}
	return g.PGood
}

// Mean implements Model: the stationary average probability.
func (g *GilbertElliott) Mean(int) float64 {
	pBadState := g.GoodToBad / (g.GoodToBad + g.BadToGood)
	return (1-pBadState)*g.PGood + pBadState*g.PBad
}

// Interface compliance.
var (
	_ Model = staticModel{}
	_ Model = (*GilbertElliott)(nil)
)
