package rtmac

import (
	"fmt"
	"io"

	"rtmac/internal/trace"
)

// Trace is a packet-level transmission recorder attached to a simulation.
type Trace struct {
	rec      *trace.Recorder
	interval Time
}

// EnableTrace starts recording the simulation's transmissions into a ring
// buffer holding the most recent capacity records. Call before Run; only
// one trace can be active per simulation (a second call replaces the first).
func (s *Simulation) EnableTrace(capacity int) (*Trace, error) {
	rec, err := trace.NewRecorder(capacity)
	if err != nil {
		return nil, fmt.Errorf("rtmac: %w", err)
	}
	rec.Attach(s.nw.Medium())
	return &Trace{rec: rec, interval: s.profileInterval}, nil
}

// Total returns how many transmissions have been observed so far, including
// records evicted from the ring.
func (t *Trace) Total() int64 { return t.rec.Total() }

// WriteLog writes the retained records, one transmission per line.
func (t *Trace) WriteLog(w io.Writer) error { return t.rec.WriteLog(w) }

// RenderInterval draws the k-th interval as an ASCII timeline, one lane per
// link: 'D' delivered data, 'x' channel loss, 'C' collision, 'e' empty
// priority-claiming frame, '.' idle. Only transmissions still in the ring
// buffer are drawn, so size the buffer for the window you care about.
func (t *Trace) RenderInterval(w io.Writer, k int64, width int) error {
	from := Time(k) * t.interval
	return trace.RenderTimeline(w, t.rec.Records(), from, from+t.interval, width)
}
