package rtmac

import (
	"fmt"
	"strings"
)

// LinkReport summarizes one link's performance.
type LinkReport struct {
	// Required is q_n, the timely-throughput requirement.
	Required float64
	// Throughput is the empirical timely-throughput (deliveries/interval).
	Throughput float64
	// Deficiency is (Required − Throughput)⁺ (Definition 1 of the paper).
	Deficiency float64
	// DeliveryRatio is delivered/arrived.
	DeliveryRatio float64
}

// ChannelReport summarizes channel-level counters.
type ChannelReport struct {
	// Transmissions counts all started transmissions, empty frames included.
	Transmissions int
	// EmptyFrames counts priority-claiming frames.
	EmptyFrames int
	// Deliveries and Losses count data outcomes; Collisions counts
	// transmissions destroyed by overlap.
	Deliveries, Losses, Collisions int
	// BusyShare is the fraction of simulated time the channel was occupied.
	BusyShare float64
	// DataShare, EmptyShare and CollidedShare split simulated time by what
	// the channel carried: clean data exchanges, clean priority-claiming
	// frames, and airtime destroyed by overlap (summed per transmission, so
	// CollidedShare can exceed the wall-clock span of the collisions).
	DataShare, EmptyShare, CollidedShare float64
}

// Report is a full summary of a simulation so far.
type Report struct {
	Protocol  string
	Intervals int64
	// TotalDeficiency is the paper's headline metric Σ_n (q_n − tput_n)⁺.
	TotalDeficiency float64
	Links           []LinkReport
	Channel         ChannelReport
}

// Report summarizes the simulation's progress so far.
func (s *Simulation) Report() Report {
	n := s.col.Links()
	links := make([]LinkReport, n)
	for i := 0; i < n; i++ {
		links[i] = LinkReport{
			Required:      s.req[i],
			Throughput:    s.col.Throughput(i),
			Deficiency:    s.col.Deficiency(i),
			DeliveryRatio: s.col.DeliveryRatio(i),
		}
	}
	st := s.nw.Medium().Stats()
	at := s.nw.Medium().Airtime()
	busyShare, dataShare, emptyShare, collidedShare := 0.0, 0.0, 0.0, 0.0
	if now := s.nw.Engine().Now(); now > 0 {
		span := float64(now)
		busyShare = float64(at.Busy) / span
		dataShare = float64(at.Data) / span
		emptyShare = float64(at.Empty) / span
		collidedShare = float64(at.Collided) / span
	}
	return Report{
		Protocol:        s.prot.Name(),
		Intervals:       s.col.Intervals(),
		TotalDeficiency: s.col.TotalDeficiency(),
		Links:           links,
		Channel: ChannelReport{
			Transmissions: st.Transmissions,
			EmptyFrames:   st.EmptyFrames,
			Deliveries:    st.Deliveries,
			Losses:        st.Losses,
			Collisions:    st.Collisions,
			BusyShare:     busyShare,
			DataShare:     dataShare,
			EmptyShare:    emptyShare,
			CollidedShare: collidedShare,
		},
	}
}

// TotalDeficiency is a shortcut for Report().TotalDeficiency.
func (s *Simulation) TotalDeficiency() float64 { return s.col.TotalDeficiency() }

// String renders the report as an aligned text block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s: %d intervals, total deficiency %.4f packets/interval\n",
		r.Protocol, r.Intervals, r.TotalDeficiency)
	fmt.Fprintf(&b, "channel: %d transmissions (%d empty), %d delivered, %d lost, %d collided, %.1f%% busy\n",
		r.Channel.Transmissions, r.Channel.EmptyFrames, r.Channel.Deliveries,
		r.Channel.Losses, r.Channel.Collisions, 100*r.Channel.BusyShare)
	fmt.Fprintf(&b, "airtime: %.1f%% data, %.1f%% empty frames, %.1f%% collided\n",
		100*r.Channel.DataShare, 100*r.Channel.EmptyShare, 100*r.Channel.CollidedShare)
	fmt.Fprintf(&b, "%4s  %9s  %10s  %10s  %7s\n", "link", "required", "throughput", "deficiency", "ratio")
	for i, l := range r.Links {
		fmt.Fprintf(&b, "%4d  %9.4f  %10.4f  %10.4f  %6.2f%%\n",
			i, l.Required, l.Throughput, l.Deficiency, 100*l.DeliveryRatio)
	}
	return b.String()
}
