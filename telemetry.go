package rtmac

import (
	"fmt"
	"io"

	"rtmac/internal/telemetry"
)

// Telemetry is the metric registry of one simulation: every channel counter,
// airtime gauge, swap counter, and debt/backoff histogram the run maintains.
// It is live — snapshots taken mid-run reflect progress so far.
type Telemetry struct {
	reg *telemetry.Registry
}

// Telemetry returns the simulation's metric registry view.
func (s *Simulation) Telemetry() Telemetry {
	return Telemetry{reg: s.nw.Telemetry()}
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name.
func (t Telemetry) WritePrometheus(w io.Writer) error { return t.reg.WritePrometheus(w) }

// WriteJSON renders every metric as an indented JSON array.
func (t Telemetry) WriteJSON(w io.Writer) error { return t.reg.WriteJSON(w) }

// Names lists the registered metric names, sorted.
func (t Telemetry) Names() []string { return t.reg.Names() }

// Counter returns the current value of a registry counter, or an error when
// the name is unknown. Intended for tests and dashboards; hot paths should
// not poll.
func (t Telemetry) Counter(name string) (int64, error) {
	for _, n := range t.reg.Names() {
		if n == name {
			return t.reg.Counter(name, "").Value(), nil
		}
	}
	return 0, fmt.Errorf("rtmac: unknown counter %q", name)
}

// ValidatePrometheusText checks that r is a well-formed Prometheus text
// exposition (the format served at /metrics and written by WritePrometheus):
// every sample parses, histograms have monotone cumulative buckets ending in
// +Inf, and _count agrees with the +Inf bucket. It returns the number of
// samples read. Used by `rtmacsim -checkmetrics` and the CI smoke test to
// guard the scrape endpoint.
func ValidatePrometheusText(r io.Reader) (int, error) {
	return telemetry.ValidatePrometheus(r)
}

// EventOption configures a simulation event stream.
type EventOption = telemetry.JSONLOption

// SampleEvents keeps one event in every `every` of the given kind — the
// knob that keeps 10⁶-interval event streams bounded. Kinds: "tx",
// "interval", "swap", "debt".
func SampleEvents(kind string, every int) EventOption { return telemetry.Sample(kind, every) }

// OnlyEvents restricts the stream to the listed kinds.
func OnlyEvents(kinds ...string) EventOption { return telemetry.Only(kinds...) }

// EventStream is a structured JSONL event stream attached to a simulation.
type EventStream struct {
	sink *telemetry.JSONL
}

// StreamEvents attaches a JSONL event stream writing to w. Call before Run;
// intervals already simulated are not replayed. The stream is deterministic:
// two same-seed, same-config runs produce byte-identical output. Call Flush
// when the run completes. It composes with EnableMonitor and ExportPerfetto:
// each consumer sees the same events.
func (s *Simulation) StreamEvents(w io.Writer, opts ...EventOption) *EventStream {
	sink := telemetry.NewJSONL(w, opts...)
	s.addSink(sink)
	s.events = sink
	return &EventStream{sink: sink}
}

// Count returns how many events have been written so far, after sampling
// and filtering.
func (e *EventStream) Count() int64 { return e.sink.Count() }

// Event is one structured simulation event as written by StreamEvents:
// interval index K, simulated time At, the link concerned (−1 for
// network-wide events), the kind ("tx", "interval", "swap", "debt"), and a
// kind-specific numeric payload. See docs/OBSERVABILITY.md for the schema.
type Event = telemetry.Event

// DecodeEvents parses a JSONL event stream produced by StreamEvents back
// into events, stopping at the first malformed line.
func DecodeEvents(r io.Reader) ([]Event, error) { return telemetry.DecodeJSONL(r) }

// Flush drains buffered events and reports the first write error, if any.
func (e *EventStream) Flush() error { return e.sink.Flush() }

// Manifest describes the provenance of this run: seed, configuration
// summary, build identity, and wall-clock timings. Extra carries arbitrary
// additional configuration (e.g. CLI flag values) into the manifest.
func (s *Simulation) Manifest(tool string, extra map[string]string) *Manifest {
	m := s.manifest
	m.Tool = tool
	m.Intervals = s.nw.Intervals()
	m.SimTimeUS = int64(s.nw.Engine().Now())
	if len(extra) > 0 {
		if m.Config == nil {
			m.Config = make(map[string]string, len(extra))
		}
		for k, v := range extra {
			m.Config[k] = v
		}
	}
	if s.events != nil {
		m.Events = s.events.Count()
	}
	if s.health != nil {
		sum := s.health.Summary()
		m.Health = &sum
	}
	if ws := s.watchSummary(); ws != nil {
		m.Watch = ws
	}
	m.Finish()
	return &Manifest{m: m}
}

// Manifest is a run-provenance record; write it alongside results so metric
// dumps and event streams stay attributable to the run that produced them.
type Manifest struct {
	m *telemetry.Manifest
}

// WriteJSON renders the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error { return m.m.WriteJSON(w) }

// Raw returns the underlying telemetry manifest, for in-module consumers
// that persist it (the run ledger).
func (m *Manifest) Raw() *telemetry.Manifest { return m.m }
