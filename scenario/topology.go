package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rtmac"
	"rtmac/topology"
)

// TopologyDocument is the JSON schema for a named-topology scenario: instead
// of anonymous link groups, it declares access points, clients, and named
// directed links (the paper's Figure-1 structure), which compile through
// rtmac/topology so reports can be mapped back to link names.
//
//	{
//	  "seed": 1, "intervals": 5000,
//	  "profile": {"preset": "control"},
//	  "protocol": {"name": "dbdp"},
//	  "accessPoints": ["ap1"],
//	  "clients": ["sensor", "actuator"],
//	  "links": [
//	    {"name": "telemetry", "from": "sensor", "to": "ap1",
//	     "successProb": 0.7, "arrivals": {"type": "bernoulli", "param": 0.5},
//	     "deliveryRatio": 0.99}
//	  ]
//	}
type TopologyDocument struct {
	Name         string        `json:"name,omitempty"`
	Seed         uint64        `json:"seed"`
	Intervals    int           `json:"intervals"`
	Profile      ProfileSpec   `json:"profile"`
	Protocol     ProtocolSpec  `json:"protocol"`
	AccessPoints []string      `json:"accessPoints"`
	Clients      []string      `json:"clients"`
	Links        []NamedLink   `json:"links"`
	Snapshots    SnapshotsSpec `json:"snapshots"`
	Fading       *FadingSpec   `json:"fading,omitempty"`
	// Conflicts declares the interference graph; names in its "names" list
	// refer to declared link names. Absent means the complete graph.
	Conflicts *ConflictsSpec `json:"conflicts,omitempty"`
	// SLO declares the conformance objectives for the watch plane; absent
	// means the feasibility-derived defaults.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// NamedLink is one directed link between declared nodes.
type NamedLink struct {
	Name          string       `json:"name"`
	From          string       `json:"from"`
	To            string       `json:"to"`
	SuccessProb   float64      `json:"successProb,omitempty"`
	Arrivals      ArrivalsSpec `json:"arrivals"`
	DeliveryRatio float64      `json:"deliveryRatio,omitempty"`
	Required      float64      `json:"required,omitempty"`
}

// BuildTopology assembles a configuration plus the named topology from a
// decoded TopologyDocument. The returned network maps link indices in
// reports back to names.
func BuildTopology(doc TopologyDocument) (rtmac.Config, *topology.Network, int, error) {
	if doc.Intervals <= 0 {
		return rtmac.Config{}, nil, 0, fmt.Errorf("scenario: intervals must be positive, got %d", doc.Intervals)
	}
	name := doc.Name
	if name == "" {
		name = "scenario"
	}
	net := topology.New(name)
	for _, ap := range doc.AccessPoints {
		if err := net.AddAccessPoint(ap); err != nil {
			return rtmac.Config{}, nil, 0, err
		}
	}
	for _, c := range doc.Clients {
		if err := net.AddClient(c); err != nil {
			return rtmac.Config{}, nil, 0, err
		}
	}
	for _, l := range doc.Links {
		arr, err := buildArrivals(l.Arrivals)
		if err != nil {
			return rtmac.Config{}, nil, 0, fmt.Errorf("scenario: link %q: %w", l.Name, err)
		}
		if err := net.AddLink(topology.Link{
			Name:          l.Name,
			From:          l.From,
			To:            l.To,
			SuccessProb:   l.SuccessProb,
			Arrivals:      arr,
			DeliveryRatio: l.DeliveryRatio,
			Required:      l.Required,
		}); err != nil {
			return rtmac.Config{}, nil, 0, err
		}
	}
	links, err := net.Links()
	if err != nil {
		return rtmac.Config{}, nil, 0, err
	}
	profile, err := buildProfile(doc.Profile)
	if err != nil {
		return rtmac.Config{}, nil, 0, err
	}
	protocol, err := buildProtocol(doc.Protocol)
	if err != nil {
		return rtmac.Config{}, nil, 0, err
	}
	conflicts, err := buildConflicts(doc.Conflicts, len(links), net.LinkIndex)
	if err != nil {
		return rtmac.Config{}, nil, 0, err
	}
	cfg := rtmac.Config{
		Seed:          doc.Seed,
		Profile:       profile,
		Links:         links,
		Conflicts:     conflicts,
		Protocol:      protocol,
		SnapshotEvery: doc.Snapshots.Every,
		SLO:           buildSLO(doc.SLO),
	}
	if doc.Fading != nil {
		cfg.Fading = &rtmac.Fading{
			PGood:     doc.Fading.PGood,
			PBad:      doc.Fading.PBad,
			GoodToBad: doc.Fading.GoodToBad,
			BadToGood: doc.Fading.BadToGood,
			Period:    rtmac.Time(doc.Fading.PeriodUs) * rtmac.Microsecond,
		}
	}
	return cfg, net, doc.Intervals, nil
}

// LoadTopology parses a TopologyDocument from JSON.
func LoadTopology(r io.Reader) (rtmac.Config, *topology.Network, int, error) {
	var doc TopologyDocument
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return rtmac.Config{}, nil, 0, fmt.Errorf("scenario: parsing topology: %w", err)
	}
	return BuildTopology(doc)
}

// LoadAnyFile loads either document format from a file: flat link groups
// (Document) or a named topology (TopologyDocument), detected by the
// presence of node declarations. The returned network is nil for flat
// documents.
func LoadAnyFile(path string) (rtmac.Config, *topology.Network, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return rtmac.Config{}, nil, 0, fmt.Errorf("scenario: %w", err)
	}
	var sniff struct {
		AccessPoints []string `json:"accessPoints"`
		Clients      []string `json:"clients"`
	}
	// A lenient pre-pass just to detect the document flavor.
	if err := json.Unmarshal(raw, &sniff); err != nil {
		return rtmac.Config{}, nil, 0, fmt.Errorf("scenario: parsing %s: %w", path, err)
	}
	if len(sniff.AccessPoints) > 0 || len(sniff.Clients) > 0 {
		return LoadTopology(bytes.NewReader(raw))
	}
	cfg, intervals, err := Load(bytes.NewReader(raw))
	return cfg, nil, intervals, err
}
