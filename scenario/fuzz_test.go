package scenario

import (
	"strings"
	"testing"

	"rtmac"
)

// FuzzLoad feeds arbitrary bytes through the JSON scenario loader; every
// accepted document must produce a configuration that NewSimulation either
// accepts or rejects cleanly — never a panic.
func FuzzLoad(f *testing.F) {
	f.Add(asymmetricJSON)
	f.Add(`{"intervals": 1}`)
	f.Add(`{"seed": 3, "intervals": 2, "profile": {"preset": "control"},
		"protocol": {"name": "ldf"},
		"links": [{"count": 1, "successProb": 0.5,
		           "arrivals": {"type": "fixed", "param": 1}, "deliveryRatio": 1}]}`)
	f.Add(`not json at all`)
	f.Add(`{"profile": {"payloadBytes": -5}}`)
	f.Fuzz(func(t *testing.T, raw string) {
		cfg, intervals, err := Load(strings.NewReader(raw))
		if err != nil {
			return // rejected cleanly
		}
		if intervals <= 0 {
			t.Fatalf("accepted document with intervals %d", intervals)
		}
		sim, err := rtmac.NewSimulation(cfg)
		if err != nil {
			return // the config layer rejected it cleanly
		}
		// Cap the work: one interval suffices to exercise the machinery.
		if err := sim.Run(1); err != nil {
			t.Fatalf("accepted config failed to run: %v", err)
		}
	})
}
