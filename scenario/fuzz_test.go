package scenario

import (
	"strings"
	"testing"

	"rtmac"
)

// FuzzLoad feeds arbitrary bytes through the JSON scenario loader; every
// accepted document must produce a configuration that NewSimulation either
// accepts or rejects cleanly — never a panic.
func FuzzLoad(f *testing.F) {
	f.Add(asymmetricJSON)
	f.Add(`{"intervals": 1}`)
	f.Add(`{"seed": 3, "intervals": 2, "profile": {"preset": "control"},
		"protocol": {"name": "ldf"},
		"links": [{"count": 1, "successProb": 0.5,
		           "arrivals": {"type": "fixed", "param": 1}, "deliveryRatio": 1}]}`)
	f.Add(`not json at all`)
	f.Add(`{"profile": {"payloadBytes": -5}}`)
	f.Fuzz(func(t *testing.T, raw string) {
		cfg, intervals, err := Load(strings.NewReader(raw))
		if err != nil {
			return // rejected cleanly
		}
		if intervals <= 0 {
			t.Fatalf("accepted document with intervals %d", intervals)
		}
		sim, err := rtmac.NewSimulation(cfg)
		if err != nil {
			return // the config layer rejected it cleanly
		}
		// Cap the work: one interval suffices to exercise the machinery.
		if err := sim.Run(1); err != nil {
			t.Fatalf("accepted config failed to run: %v", err)
		}
	})
}

// FuzzDecodeSLO feeds arbitrary bytes through the scenario slo section: any
// accepted document must build a simulation whose watch plane either enables
// cleanly or rejects with an error — never a panic, and never a run failure
// caused by the SLO declaration alone.
func FuzzDecodeSLO(f *testing.F) {
	f.Add(`{"budget": 0.1, "targets": [0.5, 0.5]}`)
	f.Add(`{"budget": 0.2}`)
	f.Add(`{"targets": []}`)
	f.Add(`{"budget": -1}`)
	f.Add(`{"budget": 1e999}`)
	f.Add(`{"targets": [1e308, -5]}`)
	f.Add(`null`)
	f.Add(`{"targets": [0.1, 0.2, 0.3]}`)
	f.Fuzz(func(t *testing.T, rawSLO string) {
		doc := `{"seed": 1, "intervals": 2, "profile": {"preset": "control"},
			"protocol": {"name": "dbdp"},
			"links": [{"count": 2, "successProb": 0.7,
			           "arrivals": {"type": "bernoulli", "param": 0.5}, "deliveryRatio": 0.9}],
			"slo": ` + rawSLO + `}`
		cfg, _, err := Load(strings.NewReader(doc))
		if err != nil {
			return // rejected cleanly
		}
		sim, err := rtmac.NewSimulation(cfg)
		if err != nil {
			return // the config layer rejected the SLO cleanly
		}
		w, err := sim.EnableWatch(rtmac.WatchConfig{})
		if err != nil {
			return // the watch layer rejected the SLO cleanly
		}
		if err := sim.Run(2); err != nil {
			t.Fatalf("accepted SLO broke the run: %v", err)
		}
		_ = w.Count()
	})
}
