package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtmac"
)

const asymmetricJSON = `{
  "seed": 7,
  "intervals": 50,
  "profile": {"preset": "video"},
  "protocol": {"name": "dbdp"},
  "links": [
    {"count": 2, "successProb": 0.5,
     "arrivals": {"type": "video", "param": 0.35}, "deliveryRatio": 0.9},
    {"count": 3, "successProb": 0.8,
     "arrivals": {"type": "video", "param": 0.7}, "deliveryRatio": 0.9}
  ]
}`

func TestLoadAndRun(t *testing.T) {
	cfg, intervals, err := Load(strings.NewReader(asymmetricJSON))
	if err != nil {
		t.Fatal(err)
	}
	if intervals != 50 {
		t.Fatalf("intervals = %d", intervals)
	}
	if len(cfg.Links) != 5 {
		t.Fatalf("links = %d, want 5", len(cfg.Links))
	}
	if cfg.Links[0].SuccessProb != 0.5 || cfg.Links[4].SuccessProb != 0.8 {
		t.Fatalf("group expansion wrong: %+v", cfg.Links)
	}
	sim, err := rtmac.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(intervals); err != nil {
		t.Fatal(err)
	}
	if sim.Report().Channel.Collisions != 0 {
		t.Fatal("DB-DP collided")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(asymmetricJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestAllProtocols(t *testing.T) {
	for _, name := range []string{"dbdp", "ldf", "eldf", "fcsma", "framecsma", "tdma", "dcf"} {
		doc := Document{
			Seed:      1,
			Intervals: 10,
			Profile:   ProfileSpec{Preset: "control"},
			Protocol:  ProtocolSpec{Name: name},
			Links: []LinkGroup{{
				Count:         3,
				SuccessProb:   0.7,
				Arrivals:      ArrivalsSpec{Type: "bernoulli", Param: 0.5},
				DeliveryRatio: 0.9,
			}},
		}
		cfg, intervals, err := Build(doc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim, err := rtmac.NewSimulation(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sim.Run(intervals); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestProtocolOptions(t *testing.T) {
	doc := Document{
		Seed:      1,
		Intervals: 10,
		Profile:   ProfileSpec{Preset: "control"},
		Protocol:  ProtocolSpec{Name: "dbdp", Pairs: 2, Influence: "log", Scale: 50, R: 5},
		Links: []LinkGroup{{
			Count: 6, SuccessProb: 0.7,
			Arrivals:      ArrivalsSpec{Type: "fixed", Param: 1},
			DeliveryRatio: 0.9,
		}},
	}
	cfg, intervals, err := Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rtmac.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(intervals); err != nil {
		t.Fatal(err)
	}
	doc.Protocol = ProtocolSpec{Name: "dbdp", Frozen: true}
	if _, _, err := Build(doc); err != nil {
		t.Fatal(err)
	}
}

func TestAllArrivalTypes(t *testing.T) {
	for _, spec := range []ArrivalsSpec{
		{Type: "bernoulli", Param: 0.5},
		{Type: "video", Param: 0.4},
		{Type: "fixed", Param: 2},
		{Type: "bursty", Param: 0.5, Lo: 1, Hi: 3},
		{Type: "binomial", Param: 0.4, N: 5},
	} {
		if _, err := buildArrivals(spec); err != nil {
			t.Errorf("%s: %v", spec.Type, err)
		}
	}
}

func TestCustomProfile(t *testing.T) {
	doc := Document{
		Seed:      1,
		Intervals: 10,
		Profile:   ProfileSpec{PayloadBytes: 200, RateMbps: 54, DeadlineUs: 3000},
		Protocol:  ProtocolSpec{Name: "ldf"},
		Links: []LinkGroup{{
			Count: 2, SuccessProb: 0.9,
			Arrivals: ArrivalsSpec{Type: "fixed", Param: 1}, DeliveryRatio: 1,
		}},
	}
	cfg, _, err := Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Profile.SlotsPerInterval() <= 0 {
		t.Fatal("custom profile fits nothing")
	}
}

func TestRejections(t *testing.T) {
	base := func() Document {
		return Document{
			Seed:      1,
			Intervals: 10,
			Profile:   ProfileSpec{Preset: "control"},
			Protocol:  ProtocolSpec{Name: "ldf"},
			Links: []LinkGroup{{
				Count: 1, SuccessProb: 0.5,
				Arrivals: ArrivalsSpec{Type: "fixed", Param: 1}, DeliveryRatio: 1,
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Document)
	}{
		{"zero intervals", func(d *Document) { d.Intervals = 0 }},
		{"bad preset", func(d *Document) { d.Profile = ProfileSpec{Preset: "lte"} }},
		{"bad protocol", func(d *Document) { d.Protocol.Name = "aloha" }},
		{"bad arrivals", func(d *Document) { d.Links[0].Arrivals.Type = "poisson" }},
		{"bad influence", func(d *Document) { d.Protocol = ProtocolSpec{Name: "eldf", Influence: "exp"} }},
		{"zero count", func(d *Document) { d.Links[0].Count = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := base()
			tc.mutate(&doc)
			if _, _, err := Build(doc); err == nil {
				t.Fatal("invalid document accepted")
			}
		})
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, _, err := Load(strings.NewReader(`{"intervals": 10, "bogus": true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestFadingScenario(t *testing.T) {
	doc := Document{
		Seed:      1,
		Intervals: 200,
		Profile:   ProfileSpec{Preset: "control"},
		Protocol:  ProtocolSpec{Name: "dbdp"},
		Fading: &FadingSpec{
			PGood: 0.85, PBad: 0.45,
			GoodToBad: 0.05, BadToGood: 0.05,
			PeriodUs: 1000,
		},
		Links: []LinkGroup{{
			Count:         4,
			Arrivals:      ArrivalsSpec{Type: "bernoulli", Param: 0.5},
			DeliveryRatio: 0.9,
		}},
	}
	cfg, intervals, err := Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fading == nil || cfg.Fading.Period != 1000 {
		t.Fatalf("fading not wired: %+v", cfg.Fading)
	}
	sim, err := rtmac.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(intervals); err != nil {
		t.Fatal(err)
	}
	rep := sim.Report()
	if rep.Channel.Losses == 0 {
		t.Fatal("fading channel produced no losses")
	}
}

func TestBuildTopology(t *testing.T) {
	doc := TopologyDocument{
		Name:         "cell",
		Seed:         1,
		Intervals:    100,
		Profile:      ProfileSpec{Preset: "control"},
		Protocol:     ProtocolSpec{Name: "dbdp"},
		AccessPoints: []string{"ap"},
		Clients:      []string{"sensor", "actuator"},
		Links: []NamedLink{
			{Name: "up", From: "sensor", To: "ap", SuccessProb: 0.7,
				Arrivals: ArrivalsSpec{Type: "bernoulli", Param: 0.5}, DeliveryRatio: 0.95},
			{Name: "d2d", From: "sensor", To: "actuator", SuccessProb: 0.6,
				Arrivals: ArrivalsSpec{Type: "bernoulli", Param: 0.2}, DeliveryRatio: 0.9},
		},
	}
	cfg, net, intervals, err := BuildTopology(doc)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLinks() != 2 || len(cfg.Links) != 2 || intervals != 100 {
		t.Fatalf("compiled %d links, %d intervals", net.NumLinks(), intervals)
	}
	sim, err := rtmac.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(intervals); err != nil {
		t.Fatal(err)
	}
	rep := sim.Report()
	worstName, _ := net.LinkName(0)
	if worstName != "up" {
		t.Fatalf("link 0 named %q", worstName)
	}
	if rep.Channel.Collisions != 0 {
		t.Fatal("collisions")
	}

	// Error paths: bad node reference, bad arrivals, bad intervals.
	bad := doc
	bad.Links = []NamedLink{{Name: "x", From: "ghost", To: "ap",
		Arrivals: ArrivalsSpec{Type: "bernoulli", Param: 0.5}}}
	if _, _, _, err := BuildTopology(bad); err == nil {
		t.Fatal("unknown node accepted")
	}
	bad2 := doc
	bad2.Intervals = 0
	if _, _, _, err := BuildTopology(bad2); err == nil {
		t.Fatal("zero intervals accepted")
	}
	bad3 := doc
	bad3.Links[0].Arrivals.Type = "poisson"
	if _, _, _, err := BuildTopology(bad3); err == nil {
		t.Fatal("bad arrivals accepted")
	}
}

func TestLoadAnyFileDetectsFormats(t *testing.T) {
	flat := filepath.Join(t.TempDir(), "flat.json")
	if err := os.WriteFile(flat, []byte(asymmetricJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, net, intervals, err := LoadAnyFile(flat)
	if err != nil {
		t.Fatal(err)
	}
	if net != nil {
		t.Fatal("flat document produced a topology")
	}
	if len(cfg.Links) != 5 || intervals != 50 {
		t.Fatalf("flat: %d links, %d intervals", len(cfg.Links), intervals)
	}

	topo := filepath.Join(t.TempDir(), "topo.json")
	doc := `{
	  "seed": 1, "intervals": 20,
	  "profile": {"preset": "control"},
	  "protocol": {"name": "ldf"},
	  "accessPoints": ["ap"],
	  "clients": ["c1"],
	  "links": [{"name": "dl", "from": "ap", "to": "c1",
	             "successProb": 0.9, "arrivals": {"type": "fixed", "param": 1},
	             "deliveryRatio": 1}]
	}`
	if err := os.WriteFile(topo, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2, net2, _, err := LoadAnyFile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if net2 == nil || net2.NumLinks() != 1 {
		t.Fatal("topology document not detected")
	}
	sim, err := rtmac.NewSimulation(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := LoadAnyFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("not json"), 0o644)
	if _, _, _, err := LoadAnyFile(badPath); err == nil {
		t.Fatal("garbage accepted")
	}
}
