// Package scenario loads simulation configurations from JSON documents, so
// heterogeneous networks can be described in files instead of code:
//
//	{
//	  "seed": 1,
//	  "intervals": 5000,
//	  "profile": {"preset": "video"},
//	  "protocol": {"name": "dbdp"},
//	  "links": [
//	    {"count": 10, "successProb": 0.5,
//	     "arrivals": {"type": "video", "param": 0.35}, "deliveryRatio": 0.9},
//	    {"count": 10, "successProb": 0.8,
//	     "arrivals": {"type": "video", "param": 0.7}, "deliveryRatio": 0.9}
//	  ]
//	}
//
// Load returns the rtmac.Config plus the interval count, ready for
// rtmac.NewSimulation. The cmd/rtmacsim tool accepts such files via
// -config.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rtmac"
)

// Document is the JSON schema.
type Document struct {
	Seed      uint64        `json:"seed"`
	Intervals int           `json:"intervals"`
	Profile   ProfileSpec   `json:"profile"`
	Protocol  ProtocolSpec  `json:"protocol"`
	Links     []LinkGroup   `json:"links"`
	Snapshots SnapshotsSpec `json:"snapshots"`
	// Fading, when present, replaces every link's static successProb with a
	// network-wide Gilbert–Elliott fading channel.
	Fading *FadingSpec `json:"fading,omitempty"`
	// Conflicts, when present, replaces the fully-interfering channel with a
	// partial interference graph; absent means the complete graph (every
	// pair of links conflicts), the paper's model.
	Conflicts *ConflictsSpec `json:"conflicts,omitempty"`
	// SLO, when present, declares the scenario's conformance objectives for
	// the watch plane (-watch). Absent means the defaults: per-link targets
	// equal to the feasibility-derived requirement vector q_i with the
	// standard deadline-miss budget.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// SLOSpec mirrors rtmac.SLOConfig in JSON form.
type SLOSpec struct {
	// Budget is the deadline-miss budget fraction in [0, 1]; 0 selects the
	// default (0.1).
	Budget float64 `json:"budget,omitempty"`
	// Targets overrides the per-link SLO targets (delivered packets per
	// interval); when present it must have one entry per link.
	Targets []float64 `json:"targets,omitempty"`
}

// buildSLO compiles the spec; validation happens in rtmac.NewSimulation,
// which knows the link count.
func buildSLO(spec *SLOSpec) *rtmac.SLOConfig {
	if spec == nil {
		return nil
	}
	return &rtmac.SLOConfig{
		Budget:  spec.Budget,
		Targets: append([]float64(nil), spec.Targets...),
	}
}

// ConflictsSpec declares the interference topology as a conflict graph over
// the scenario's links.
type ConflictsSpec struct {
	// Mode is "complete" (every pair conflicts — same as omitting the
	// section), "none" (no pair conflicts), "edges" (explicit conflict
	// pairs), or "cliques" (a union of collision domains). Empty infers
	// "edges" or "cliques" when the matching list is present, else
	// "complete".
	Mode string `json:"mode,omitempty"`
	// Edges lists conflicting link pairs by index (flat documents).
	// Duplicate and reversed pairs are idempotent; self-conflicts are
	// errors.
	Edges [][2]int `json:"edges,omitempty"`
	// Names lists conflicting link pairs by link name (topology documents
	// only). Unknown names and self-conflicts are errors.
	Names [][2]string `json:"names,omitempty"`
	// Cliques lists collision domains by link index: every pair within a
	// clique conflicts.
	Cliques [][]int `json:"cliques,omitempty"`
}

// mode resolves the effective mode, inferring it from the populated lists
// when unset.
func (s *ConflictsSpec) mode() string {
	if s.Mode != "" {
		return s.Mode
	}
	switch {
	case len(s.Cliques) > 0:
		return "cliques"
	case len(s.Edges) > 0 || len(s.Names) > 0:
		return "edges"
	default:
		return "complete"
	}
}

// buildConflicts compiles the spec for an n-link network. nameIndex resolves
// link names to indices (nil for flat documents, where named edges are an
// error).
func buildConflicts(spec *ConflictsSpec, n int, nameIndex func(string) (int, error)) (*rtmac.ConflictGraph, error) {
	if spec == nil {
		return nil, nil
	}
	mode := spec.mode()
	if mode != "edges" && (len(spec.Edges) > 0 || len(spec.Names) > 0) {
		return nil, fmt.Errorf("scenario: conflicts mode %q does not take edges", mode)
	}
	if mode != "cliques" && len(spec.Cliques) > 0 {
		return nil, fmt.Errorf("scenario: conflicts mode %q does not take cliques", mode)
	}
	switch mode {
	case "complete":
		return rtmac.CompleteConflicts(n)
	case "none":
		return rtmac.NewConflictGraph(n, nil)
	case "edges":
		edges := spec.Edges
		if len(spec.Names) > 0 {
			if nameIndex == nil {
				return nil, fmt.Errorf("scenario: named conflict edges need a topology document")
			}
			edges = append([][2]int(nil), edges...)
			for _, pair := range spec.Names {
				a, err := nameIndex(pair[0])
				if err != nil {
					return nil, fmt.Errorf("scenario: conflicts: %w", err)
				}
				b, err := nameIndex(pair[1])
				if err != nil {
					return nil, fmt.Errorf("scenario: conflicts: %w", err)
				}
				if a == b {
					return nil, fmt.Errorf("scenario: conflicts: link %q conflicts with itself", pair[0])
				}
				edges = append(edges, [2]int{a, b})
			}
		}
		return rtmac.NewConflictGraph(n, edges)
	case "cliques":
		return rtmac.CliqueConflicts(n, spec.Cliques)
	default:
		return nil, fmt.Errorf("scenario: unknown conflicts mode %q", mode)
	}
}

// FadingSpec mirrors rtmac.Fading.
type FadingSpec struct {
	PGood     float64 `json:"pGood"`
	PBad      float64 `json:"pBad"`
	GoodToBad float64 `json:"goodToBad"`
	BadToGood float64 `json:"badToGood"`
	PeriodUs  int64   `json:"periodUs"`
}

// ProfileSpec selects a PHY profile: either a preset name or custom
// parameters.
type ProfileSpec struct {
	// Preset is "video" or "control"; empty means custom.
	Preset string `json:"preset,omitempty"`
	// Custom parameters (used when Preset is empty).
	PayloadBytes int     `json:"payloadBytes,omitempty"`
	RateMbps     float64 `json:"rateMbps,omitempty"`
	DeadlineUs   int64   `json:"deadlineUs,omitempty"`
	Name         string  `json:"name,omitempty"`
}

// ProtocolSpec selects the policy.
type ProtocolSpec struct {
	// Name is dbdp | ldf | eldf | fcsma | framecsma | dcf.
	Name string `json:"name"`
	// Pairs enables DB-DP's multi-pair extension when > 1.
	Pairs int `json:"pairs,omitempty"`
	// Frozen disables DB-DP's reordering.
	Frozen bool `json:"frozen,omitempty"`
	// Influence selects the debt influence function for dbdp/eldf:
	// "paperlog" (default), "identity", or "log" with Scale.
	Influence string  `json:"influence,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	// R overrides DB-DP's Glauber constant (default 10).
	R float64 `json:"r,omitempty"`
}

// LinkGroup describes count identical links.
type LinkGroup struct {
	Count         int          `json:"count"`
	SuccessProb   float64      `json:"successProb"`
	Arrivals      ArrivalsSpec `json:"arrivals"`
	DeliveryRatio float64      `json:"deliveryRatio,omitempty"`
	Required      float64      `json:"required,omitempty"`
}

// ArrivalsSpec selects the arrival process.
type ArrivalsSpec struct {
	// Type is bernoulli | video | fixed | bursty | binomial.
	Type string `json:"type"`
	// Param is the main parameter: Bernoulli p, video alpha, fixed count,
	// bursty alpha, binomial p.
	Param float64 `json:"param"`
	// Lo/Hi bound the bursty burst size; N sets binomial trials.
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	N  int `json:"n,omitempty"`
}

// SnapshotsSpec enables convergence snapshots.
type SnapshotsSpec struct {
	Every int `json:"every,omitempty"`
}

// Load parses a JSON document and assembles the configuration.
func Load(r io.Reader) (rtmac.Config, int, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return rtmac.Config{}, 0, fmt.Errorf("scenario: parsing: %w", err)
	}
	return Build(doc)
}

// LoadFile is Load over a file path.
func LoadFile(path string) (rtmac.Config, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return rtmac.Config{}, 0, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Build assembles a configuration from an already-decoded document.
func Build(doc Document) (rtmac.Config, int, error) {
	if doc.Intervals <= 0 {
		return rtmac.Config{}, 0, fmt.Errorf("scenario: intervals must be positive, got %d", doc.Intervals)
	}
	profile, err := buildProfile(doc.Profile)
	if err != nil {
		return rtmac.Config{}, 0, err
	}
	protocol, err := buildProtocol(doc.Protocol)
	if err != nil {
		return rtmac.Config{}, 0, err
	}
	var links []rtmac.Link
	for gi, group := range doc.Links {
		if group.Count <= 0 {
			return rtmac.Config{}, 0, fmt.Errorf("scenario: link group %d has count %d", gi, group.Count)
		}
		arr, err := buildArrivals(group.Arrivals)
		if err != nil {
			return rtmac.Config{}, 0, fmt.Errorf("scenario: link group %d: %w", gi, err)
		}
		for i := 0; i < group.Count; i++ {
			links = append(links, rtmac.Link{
				SuccessProb:   group.SuccessProb,
				Arrivals:      arr,
				DeliveryRatio: group.DeliveryRatio,
				Required:      group.Required,
			})
		}
	}
	conflicts, err := buildConflicts(doc.Conflicts, len(links), nil)
	if err != nil {
		return rtmac.Config{}, 0, err
	}
	cfg := rtmac.Config{
		Seed:          doc.Seed,
		Profile:       profile,
		Links:         links,
		Conflicts:     conflicts,
		Protocol:      protocol,
		SnapshotEvery: doc.Snapshots.Every,
		SLO:           buildSLO(doc.SLO),
	}
	if doc.Fading != nil {
		cfg.Fading = &rtmac.Fading{
			PGood:     doc.Fading.PGood,
			PBad:      doc.Fading.PBad,
			GoodToBad: doc.Fading.GoodToBad,
			BadToGood: doc.Fading.BadToGood,
			Period:    rtmac.Time(doc.Fading.PeriodUs) * rtmac.Microsecond,
		}
	}
	return cfg, doc.Intervals, nil
}

func buildProfile(spec ProfileSpec) (rtmac.Profile, error) {
	switch spec.Preset {
	case "video":
		return rtmac.VideoProfile(), nil
	case "control":
		return rtmac.ControlProfile(), nil
	case "":
		name := spec.Name
		if name == "" {
			name = "custom"
		}
		return rtmac.CustomProfile(name, spec.PayloadBytes, spec.RateMbps,
			rtmac.Time(spec.DeadlineUs)*rtmac.Microsecond)
	default:
		return rtmac.Profile{}, fmt.Errorf("scenario: unknown profile preset %q", spec.Preset)
	}
}

func buildProtocol(spec ProtocolSpec) (rtmac.Protocol, error) {
	influence := func() (rtmac.InfluenceFunc, error) {
		switch spec.Influence {
		case "", "paperlog":
			return rtmac.PaperInfluence(), nil
		case "identity":
			return rtmac.IdentityInfluence(), nil
		case "log":
			return rtmac.LogInfluence(spec.Scale)
		default:
			return rtmac.InfluenceFunc{}, fmt.Errorf("scenario: unknown influence %q", spec.Influence)
		}
	}
	switch spec.Name {
	case "dbdp":
		var opts []rtmac.DBDPOption
		if spec.Pairs > 1 {
			opts = append(opts, rtmac.WithSwapPairs(spec.Pairs))
		}
		if spec.Frozen {
			opts = append(opts, rtmac.WithFrozenPriorities())
		}
		if spec.Influence != "" || spec.R != 0 {
			f, err := influence()
			if err != nil {
				return rtmac.Protocol{}, err
			}
			r := spec.R
			if r == 0 {
				r = 10
			}
			opts = append(opts, rtmac.WithInfluence(f, r))
		}
		return rtmac.DBDP(opts...), nil
	case "ldf":
		return rtmac.LDF(), nil
	case "eldf":
		f, err := influence()
		if err != nil {
			return rtmac.Protocol{}, err
		}
		return rtmac.ELDF(f), nil
	case "fcsma":
		return rtmac.FCSMA(), nil
	case "framecsma":
		return rtmac.FrameCSMA(), nil
	case "tdma":
		return rtmac.TDMA(), nil
	case "dcf":
		return rtmac.DCF(), nil
	default:
		return rtmac.Protocol{}, fmt.Errorf("scenario: unknown protocol %q", spec.Name)
	}
}

func buildArrivals(spec ArrivalsSpec) (rtmac.Arrivals, error) {
	switch spec.Type {
	case "bernoulli":
		return rtmac.BernoulliArrivals(spec.Param)
	case "video":
		return rtmac.VideoArrivals(spec.Param)
	case "fixed":
		return rtmac.FixedArrivals(int(spec.Param)), nil
	case "bursty":
		return rtmac.BurstyArrivals(spec.Param, spec.Lo, spec.Hi)
	case "binomial":
		return rtmac.BinomialArrivals(spec.N, spec.Param)
	default:
		return rtmac.Arrivals{}, fmt.Errorf("scenario: unknown arrival type %q", spec.Type)
	}
}
