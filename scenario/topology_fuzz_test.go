package scenario

import (
	"strings"
	"testing"

	"rtmac"
)

// conflictTopologyJSON is a well-formed named-topology document exercising
// the conflicts section, including deliberately duplicated and reversed
// pairs (both idempotent by the symmetrize-and-dedup rule).
const conflictTopologyJSON = `{
  "seed": 1, "intervals": 2,
  "profile": {"preset": "control"},
  "protocol": {"name": "dbdp"},
  "accessPoints": ["ap"],
  "clients": ["c1", "c2", "c3"],
  "links": [
    {"name": "l1", "from": "c1", "to": "ap", "successProb": 0.7,
     "arrivals": {"type": "fixed", "param": 1}, "deliveryRatio": 0.9},
    {"name": "l2", "from": "c2", "to": "ap", "successProb": 0.7,
     "arrivals": {"type": "fixed", "param": 1}, "deliveryRatio": 0.9},
    {"name": "l3", "from": "ap", "to": "c3", "successProb": 0.7,
     "arrivals": {"type": "fixed", "param": 1}, "deliveryRatio": 0.9}
  ],
  "conflicts": {"names": [["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]}
}`

// FuzzDecodeTopology feeds arbitrary bytes through the named-topology loader
// with special attention to the conflicts section: self-conflicts and
// unknown link names must be rejected cleanly, duplicate and reversed edges
// must be idempotent, and every accepted document must compile into a
// simulation whose conflict graph is symmetric and covers exactly the
// declared links — never a panic.
func FuzzDecodeTopology(f *testing.F) {
	f.Add(conflictTopologyJSON)
	f.Add(strings.Replace(conflictTopologyJSON,
		`[["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]`, `[["l1", "l1"]]`, 1))
	f.Add(strings.Replace(conflictTopologyJSON,
		`[["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]`, `[["l1", "ghost"]]`, 1))
	f.Add(strings.Replace(conflictTopologyJSON,
		`"names": [["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]`,
		`"mode": "cliques", "cliques": [[0, 1], [2]]`, 1))
	f.Add(strings.Replace(conflictTopologyJSON,
		`"names": [["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]`, `"mode": "none"`, 1))
	f.Add(strings.Replace(conflictTopologyJSON,
		`"names": [["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]`,
		`"mode": "complete", "edges": [[0, 1]]`, 1))
	f.Add(`{"accessPoints": ["ap"], "clients": [], "links": []}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, raw string) {
		cfg, _, intervals, err := LoadTopology(strings.NewReader(raw))
		if err != nil {
			return // rejected cleanly
		}
		if intervals <= 0 {
			t.Fatalf("accepted document with intervals %d", intervals)
		}
		if g := cfg.Conflicts; g != nil {
			if g.Links() != len(cfg.Links) {
				t.Fatalf("conflict graph covers %d links, document declares %d",
					g.Links(), len(cfg.Links))
			}
			n := g.Links()
			if n > 64 {
				n = 64 // bound the quadratic sweep on adversarial documents
			}
			for a := 0; a < n; a++ {
				if !g.Conflicts(a, a) {
					t.Fatalf("link %d does not conflict with itself", a)
				}
				for b := a + 1; b < n; b++ {
					if g.Conflicts(a, b) != g.Conflicts(b, a) {
						t.Fatalf("asymmetric conflict between %d and %d", a, b)
					}
				}
			}
		}
		sim, err := rtmac.NewSimulation(cfg)
		if err != nil {
			return // the config layer rejected it cleanly
		}
		if err := sim.Run(1); err != nil {
			t.Fatalf("accepted config failed to run: %v", err)
		}
	})
}

// TestConflictTopologyValidation pins the loader's error paths the fuzz
// corpus seeds: self-conflicts and unknown names are rejected, duplicates
// and reversed pairs collapse to one edge.
func TestConflictTopologyValidation(t *testing.T) {
	cfg, _, _, err := LoadTopology(strings.NewReader(conflictTopologyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Conflicts == nil {
		t.Fatal("conflicts section did not produce a graph")
	}
	if got := cfg.Conflicts.Edges(); got != 1 {
		t.Errorf("duplicate and reversed pairs should collapse to 1 edge, got %d", got)
	}
	if !cfg.Conflicts.Conflicts(0, 1) || cfg.Conflicts.Conflicts(0, 2) {
		t.Error("wrong edge set after dedup")
	}
	for _, bad := range []struct{ name, repl string }{
		{"self-conflict", `[["l1", "l1"]]`},
		{"unknown-name", `[["l1", "ghost"]]`},
	} {
		doc := strings.Replace(conflictTopologyJSON,
			`[["l1", "l2"], ["l2", "l1"], ["l1", "l2"]]`, bad.repl, 1)
		if _, _, _, err := LoadTopology(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: document accepted, want error", bad.name)
		}
	}
}
