package scenario

import (
	"path/filepath"
	"testing"

	"rtmac"
)

// TestShippedScenariosRunCleanUnderStrictMonitor decodes every scenario file
// shipped in scenarios/ and runs it for 1000 intervals with the strict
// invariant monitor attached: a shipped scenario that fails to decode, fails
// validation, or trips a structural invariant is a regression regardless of
// whether any unit test references it directly.
func TestShippedScenariosRunCleanUnderStrictMonitor(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped scenarios found in ../scenarios")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			cfg, _, intervals, err := LoadAnyFile(path)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if intervals <= 0 {
				t.Errorf("scenario declares %d intervals, want positive", intervals)
			}
			s, err := rtmac.NewSimulation(cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			mon, err := s.EnableMonitor(rtmac.MonitorConfig{Strict: true})
			if err != nil {
				t.Fatalf("monitor: %v", err)
			}
			if err := s.Run(1000); err != nil {
				t.Fatalf("run violated an invariant: %v", err)
			}
			if vs := mon.Violations(); len(vs) > 0 {
				t.Fatalf("monitor recorded %d violations, first: %v", len(vs), vs[0])
			}
		})
	}
}
