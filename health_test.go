package rtmac_test

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtmac"
	"rtmac/internal/health"
)

func newHealthTestSim(t *testing.T) *rtmac.Simulation {
	t.Helper()
	sim, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     7,
		Profile:  rtmac.ControlProfile(),
		Links:    controlLinks(10, 0.7, 0.6, 0.99),
		Protocol: rtmac.DBDP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestWatchdogFiresEndToEnd drives the whole stall pipeline under an
// artificially tiny slot budget: every interval overruns 1 ns of allowance,
// so stall events must reach both the JSONL stream and the monitor's flight
// recorder, and the manifest must carry the watchdog verdict.
func TestWatchdogFiresEndToEnd(t *testing.T) {
	sim := newHealthTestSim(t)
	var events bytes.Buffer
	stream := sim.StreamEvents(&events, rtmac.OnlyEvents("stall"))
	mon, err := sim.EnableMonitor(rtmac.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.EnableHealth(rtmac.HealthConfig{SlotBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	h.Stop()
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}

	if h.Overruns() == 0 {
		t.Fatal("1 ns budget produced no overruns")
	}
	evs, err := rtmac.DecodeEvents(&events)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no stall events reached the stream")
	}
	for _, ev := range evs {
		if ev.Kind != "stall" || ev.Link != -1 {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Fields["overrun_ns"] <= 0 {
			t.Fatalf("stall without positive overrun: %+v", ev)
		}
	}

	// The monitor must tolerate the new kind (no violations) and the flight
	// recorder must have retained the stall entries.
	if n := mon.Count(); n != 0 {
		t.Fatalf("monitor flagged %d violations on stall events", n)
	}
	var dump bytes.Buffer
	if err := mon.WriteFlightRecorder(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), `"stall"`) {
		t.Fatal("flight recorder dump carries no stall entries")
	}

	m := sim.Manifest("test", nil).Raw()
	if m.Health == nil {
		t.Fatal("manifest missing health summary")
	}
	if m.Health.Overruns == 0 || m.Health.WatchdogIntervals != 50 {
		t.Fatalf("watchdog verdict not in manifest: %+v", m.Health)
	}
	if m.Health.Samples < 1 {
		t.Fatalf("collector contributed no samples: %+v", m.Health)
	}
}

// TestHealthResultsDeterministic pins sim purity at the API level: identical
// seeds produce identical reports with and without the health plane (the
// huge budget keeps non-deterministic stall events out of play).
func TestHealthResultsDeterministic(t *testing.T) {
	run := func(withHealth bool) rtmac.Report {
		sim := newHealthTestSim(t)
		if withHealth {
			h, err := sim.EnableHealth(rtmac.HealthConfig{
				SlotBudget:   time.Hour,
				SamplePeriod: 10 * time.Millisecond,
				ProfileDir:   filepath.Join(t.TempDir(), "ring"),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Stop()
		}
		if err := sim.Run(1000); err != nil {
			t.Fatal(err)
		}
		return sim.Report()
	}
	plain := run(false)
	healthy := run(true)
	if plain.TotalDeficiency != healthy.TotalDeficiency ||
		plain.Channel != healthy.Channel {
		t.Fatalf("reports diverge with health enabled:\nplain   %+v\nhealthy %+v",
			plain, healthy)
	}
}

// TestHealthServeEndpoints checks the live plane: /api/health serves a valid
// enabled document and /debug/pprof/profile?seconds=1 returns a CPU profile
// on a -serve -health style run.
func TestHealthServeEndpoints(t *testing.T) {
	sim := newHealthTestSim(t)
	h, err := sim.EnableHealth(rtmac.HealthConfig{SlotBudget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	obsrv, err := sim.ServeObservability("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer obsrv.Close()
	if err := sim.Run(500); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + obsrv.Addr() + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/health status %d: %s", resp.StatusCode, body)
	}
	if err := rtmac.ValidateHealthDoc(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid /api/health document: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), `"enabled": true`) {
		t.Fatalf("/api/health not enabled with health plane attached:\n%s", body)
	}

	resp, err = http.Get("http://" + obsrv.Addr() + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/profile status %d: %s", resp.StatusCode, prof)
	}
	if len(prof) == 0 {
		t.Fatal("empty CPU profile from /debug/pprof/profile")
	}
}

// TestEnableHealthTwiceFails guards the single-plane invariant.
func TestEnableHealthTwiceFails(t *testing.T) {
	sim := newHealthTestSim(t)
	h, err := sim.EnableHealth(rtmac.HealthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	if _, err := sim.EnableHealth(rtmac.HealthConfig{}); err == nil {
		t.Fatal("second EnableHealth accepted")
	}
}

// TestHealthProfileRingWritesManifest runs with a ring attached long enough
// for the first capture round and checks the on-disk layout.
func TestHealthProfileRingWritesManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ring")
	sim := newHealthTestSim(t)
	h, err := sim.EnableHealth(rtmac.HealthConfig{
		SlotBudget:         time.Hour,
		ProfileDir:         dir,
		CPUProfileDuration: 50 * time.Millisecond,
		ProfilePeriod:      time.Hour, // one round
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(200); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if entries, err := health.ReadManifest(dir); err == nil && len(entries) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.Stop()
	entries, err := health.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var haveCPU bool
	for _, e := range entries {
		if e.Type == "cpu" {
			haveCPU = true
		}
		if e.Labels["seed"] != "7" || e.Labels["protocol"] == "" {
			t.Fatalf("ring entry missing workload labels: %+v", e)
		}
	}
	if !haveCPU {
		t.Fatalf("ring captured no CPU profile: %+v", entries)
	}
}
