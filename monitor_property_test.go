package rtmac_test

import (
	"math/rand"
	"testing"

	"rtmac"
)

// ---------------------------------------------------------------------------
// Property-based invariant tests: random network shapes against the runtime
// monitor. The paper's structural guarantees — σ stays a bijection, at most
// the configured number of adjacent swaps per interval, collision-freedom for
// the collision-free policies — must hold for EVERY configuration, not just
// the figure scenarios, so these tests draw random link counts, channel
// reliabilities, arrival rates, and delivery ratios from a fixed seed and
// demand that the permutation_valid, single_adjacent_swap, and
// collision_free checkers stay silent for a thousand intervals per case.
// ---------------------------------------------------------------------------

// structuralChecks are the monitor checkers whose firing would falsify the
// paper's structural guarantees (as opposed to debt_sane/airtime_conserved,
// which audit bookkeeping).
var structuralChecks = map[string]bool{
	"permutation_valid":    true,
	"single_adjacent_swap": true,
	"collision_free":       true,
}

// randomLinks draws n links with reliabilities, Bernoulli arrival rates, and
// delivery ratios in comfortably feasible ranges (the properties under test
// are structural, not capacity-related, so infeasible loads would only
// obscure them).
func randomLinks(rng *rand.Rand, n int) []rtmac.Link {
	links := make([]rtmac.Link, n)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.55 + 0.4*rng.Float64(), // [0.55, 0.95)
			Arrivals:      rtmac.MustBernoulliArrivals(0.2 + 0.6*rng.Float64()),
			DeliveryRatio: 0.5 + 0.35*rng.Float64(), // [0.5, 0.85)
		}
	}
	return links
}

// runMonitoredCase simulates one random configuration under the invariant
// monitor and fails the test if any structural checker fired.
func runMonitoredCase(t *testing.T, protocol rtmac.Protocol, seed uint64, n, intervals int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     seed,
		Profile:  rtmac.ControlProfile(),
		Links:    randomLinks(rng, n),
		Protocol: protocol,
	})
	if err != nil {
		t.Fatalf("seed=%d n=%d: %v", seed, n, err)
	}
	// Flight recorder disabled: these runs only need the checkers.
	mon, err := s.EnableMonitor(rtmac.MonitorConfig{FlightRecorderIntervals: -1})
	if err != nil {
		t.Fatalf("seed=%d n=%d: %v", seed, n, err)
	}
	if err := s.Run(intervals); err != nil {
		t.Fatalf("seed=%d n=%d: %v", seed, n, err)
	}
	for _, v := range mon.Violations() {
		if structuralChecks[v.Check] {
			t.Errorf("seed=%d n=%d: %s fired: %s", seed, n, v.Check, v)
		}
	}
}

// TestMonitorInvariantsRandomConfigs sweeps random configurations for each
// collision-free policy. Each case runs 1000 intervals (100 in -short mode).
func TestMonitorInvariantsRandomConfigs(t *testing.T) {
	intervals := 1000
	cases := 5
	if testing.Short() {
		intervals = 100
		cases = 3
	}
	protocols := map[string]func() rtmac.Protocol{
		"dbdp":      func() rtmac.Protocol { return rtmac.DBDP() },
		"ldf":       func() rtmac.Protocol { return rtmac.LDF() },
		"tdma":      func() rtmac.Protocol { return rtmac.TDMA() },
		"framecsma": func() rtmac.Protocol { return rtmac.FrameCSMA() },
	}
	for name, mk := range protocols {
		t.Run(name, func(t *testing.T) {
			// The case seed doubles as the simulation seed and drives the
			// random shape, so every failure reproduces from its log line.
			shape := rand.New(rand.NewSource(0x5eed))
			for c := 0; c < cases; c++ {
				seed := uint64(1000*c + 1)
				n := 2 + shape.Intn(11) // [2, 12] links
				runMonitoredCase(t, mk(), seed, n, intervals)
			}
		})
	}
}

// TestMonitorInvariantsMultiPairSwaps exercises the swap-allowance checker
// under WithSwapPairs > 1 (Remark 6): up to that many disjoint adjacent
// swaps per interval are legal and must not trip single_adjacent_swap.
func TestMonitorInvariantsMultiPairSwaps(t *testing.T) {
	intervals := 1000
	if testing.Short() {
		intervals = 100
	}
	for _, pairs := range []int{2, 3} {
		runMonitoredCase(t, rtmac.DBDP(rtmac.WithSwapPairs(pairs)), uint64(40+pairs), 9, intervals)
	}
}
