package rtmac

import (
	"fmt"

	"rtmac/internal/metrics"
)

// Delay exposes per-packet delivery-delay statistics for a simulation: how
// early within the deadline successful deliveries land. Only delivered data
// packets are counted.
type Delay struct {
	d *metrics.DelayStats
}

// EnableDelayStats starts collecting delivery-delay statistics with the
// given histogram resolution (buckets per deadline; 100 is a fine default).
// Call before Run. It can coexist with EnableTrace.
func (s *Simulation) EnableDelayStats(resolution int) (*Delay, error) {
	d, err := metrics.NewDelayStats(s.profileInterval, resolution)
	if err != nil {
		return nil, fmt.Errorf("rtmac: %w", err)
	}
	d.Attach(s.nw.Medium())
	return &Delay{d: d}, nil
}

// Count returns how many deliveries were observed.
func (d *Delay) Count() int64 { return d.d.Count() }

// Mean returns the average delivery delay.
func (d *Delay) Mean() Time { return d.d.Mean() }

// Max returns the largest observed delay (bounded by the deadline).
func (d *Delay) Max() Time { return d.d.Max() }

// Quantile returns the q-quantile of the delay distribution, at histogram
// resolution.
func (d *Delay) Quantile(q float64) (Time, error) {
	v, err := d.d.Quantile(q)
	if err != nil {
		return 0, fmt.Errorf("rtmac: %w", err)
	}
	return v, nil
}

// DeadlineShare returns the fraction of deliveries completed within
// frac·deadline of their arrival.
func (d *Delay) DeadlineShare(frac float64) float64 { return d.d.DeadlineShare(frac) }

// Histogram returns the raw bucket counts; bucket i covers delays within
// (i, i+1]·deadline/resolution.
func (d *Delay) Histogram() []int64 { return d.d.Histogram() }
