package rtmac

import (
	"fmt"

	"rtmac/internal/metrics"
	"rtmac/internal/stats"
)

// Delay exposes per-packet delivery-delay statistics for a simulation: how
// early within the deadline successful deliveries land. Only delivered data
// packets are counted.
type Delay struct {
	d *metrics.DelayStats
}

// EnableDelayStats starts collecting delivery-delay statistics with the
// given histogram resolution (buckets per deadline; 100 is a fine default).
// Call before Run. It can coexist with EnableTrace.
func (s *Simulation) EnableDelayStats(resolution int) (*Delay, error) {
	d, err := metrics.NewDelayStats(s.profileInterval, resolution)
	if err != nil {
		return nil, fmt.Errorf("rtmac: %w", err)
	}
	d.Attach(s.nw.Medium())
	return &Delay{d: d}, nil
}

// Count returns how many deliveries were observed.
func (d *Delay) Count() int64 { return d.d.Count() }

// Mean returns the average delivery delay.
func (d *Delay) Mean() Time { return d.d.Mean() }

// Max returns the largest observed delay (bounded by the deadline).
func (d *Delay) Max() Time { return d.d.Max() }

// Quantile returns the q-quantile of the delay distribution, at histogram
// resolution.
func (d *Delay) Quantile(q float64) (Time, error) {
	v, err := d.d.Quantile(q)
	if err != nil {
		return 0, fmt.Errorf("rtmac: %w", err)
	}
	return v, nil
}

// DeadlineShare returns the fraction of deliveries completed within
// frac·deadline of their arrival.
func (d *Delay) DeadlineShare(frac float64) float64 { return d.d.DeadlineShare(frac) }

// Histogram returns the raw bucket counts; bucket i covers delays within
// (i, i+1]·deadline/resolution.
func (d *Delay) Histogram() []int64 { return d.d.Histogram() }

// DelayQuantiles streams delivery delays through fixed-memory P² estimators,
// yielding p50/p95/p99 without storing samples. Unlike EnableDelayStats it
// carries a serializable partial (State), which is what run-ledger records
// persist.
type DelayQuantiles struct {
	d *metrics.DelaySketch
}

// EnableDelaySketch starts streaming delivery delays through the quantile
// sketch. Call before Run; it can coexist with EnableDelayStats and
// EnableTrace.
func (s *Simulation) EnableDelaySketch() (*DelayQuantiles, error) {
	d, err := metrics.NewDelaySketch(s.profileInterval)
	if err != nil {
		return nil, fmt.Errorf("rtmac: %w", err)
	}
	d.Attach(s.nw.Medium())
	return &DelayQuantiles{d: d}, nil
}

// Count returns how many deliveries were observed.
func (d *DelayQuantiles) Count() int64 { return d.d.Count() }

// P50 returns the estimated median delivery delay in microseconds.
func (d *DelayQuantiles) P50() float64 { return d.d.P50() }

// P95 returns the estimated 95th-percentile delay in microseconds.
func (d *DelayQuantiles) P95() float64 { return d.d.P95() }

// P99 returns the estimated 99th-percentile delay in microseconds.
func (d *DelayQuantiles) P99() float64 { return d.d.P99() }

// State exports the sketch's serializable partial for ledger records.
func (d *DelayQuantiles) State() stats.SketchState { return d.d.State() }
