package rtmac_test

import (
	"bytes"
	"testing"

	"rtmac"
	"rtmac/internal/rundiff"
)

// perturbedStream runs the control scenario and returns its event stream,
// optionally with one injected extra arrival at interval k on the given
// link. The perturbation consumes no RNG draws, so the stream is
// byte-identical to the baseline up to interval k by construction.
func perturbedStream(t *testing.T, seed uint64, intervals int, perturb *rtmac.Perturbation) []byte {
	t.Helper()
	links := make([]rtmac.Link, 10)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.78),
			DeliveryRatio: 0.99,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     seed,
		Profile:  rtmac.ControlProfile(),
		Links:    links,
		Protocol: rtmac.DBDP(),
		Perturb:  perturb,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stream := s.StreamEvents(&buf)
	if err := s.Run(intervals); err != nil {
		t.Fatal(err)
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRundiffPerturbationSweep is the acceptance gate for the differential
// explainer: for every swept perturbation point, diffing the baseline
// against the perturbed run must report a first divergent event inside
// exactly the perturbed interval — on both sides, since every interval
// before it is byte-identical by construction. A pointer landing on any
// other interval would mean the injection leaked RNG draws (streams diverge
// early) or the differ mis-aligned the streams (diverge late).
func TestRundiffPerturbationSweep(t *testing.T) {
	const intervals = 40
	base := perturbedStream(t, 7, intervals, nil)
	for _, k := range []int64{0, 3, 17, 39} {
		pert := perturbedStream(t, 7, intervals, &rtmac.Perturbation{K: k, Link: 2, Extra: 1})
		d, err := rundiff.DiffEvents(bytes.NewReader(base), bytes.NewReader(pert), rundiff.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if d.Equal {
			t.Fatalf("k=%d: perturbed run compared equal to baseline", k)
		}
		div := d.Divergence
		if div.K() != k {
			t.Errorf("k=%d: first divergence at interval %d kind=%s link=%d, want interval %d",
				k, div.K(), div.Kind(), div.Link(), k)
		}
		if div.A == nil || div.B == nil {
			t.Fatalf("k=%d: divergent lines did not decode (a=%v b=%v)", k, div.A, div.B)
		}
		if div.A.K != k || div.B.K != k {
			t.Errorf("k=%d: sides disagree on divergence interval (a k=%d, b k=%d)",
				k, div.A.K, div.B.K)
		}
		if div.Kind() == "" {
			t.Errorf("k=%d: divergence without event kind", k)
		}
	}
}

// TestRundiffPerturbedJourneys pins the attribution path end-to-end: the
// perturbed run records one more packet on the perturbed link, and the
// journey key-join must surface it as an unmatched or mismatched journey
// with per-link attribution totals differing by exactly that packet.
func TestRundiffPerturbedJourneys(t *testing.T) {
	run := func(perturb *rtmac.Perturbation) []byte {
		links := make([]rtmac.Link, 6)
		for i := range links {
			links[i] = rtmac.Link{
				SuccessProb:   0.7,
				Arrivals:      rtmac.MustBernoulliArrivals(0.5),
				DeliveryRatio: 0.9,
			}
		}
		s, err := rtmac.NewSimulation(rtmac.Config{
			Seed:     11,
			Profile:  rtmac.ControlProfile(),
			Links:    links,
			Protocol: rtmac.DBDP(),
			Perturb:  perturb,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		js, err := s.EnableJourneys(&buf, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(30); err != nil {
			t.Fatal(err)
		}
		if err := js.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(nil)
	pert := run(&rtmac.Perturbation{K: 5, Link: 3, Extra: 1})
	d, err := rundiff.DiffJourneys(bytes.NewReader(base), bytes.NewReader(pert), rundiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Equal {
		t.Fatal("perturbed journeys compared equal")
	}
	if got := d.TotalB.Total - d.TotalA.Total; got != 1 {
		t.Errorf("journey total delta %d, want 1 (the injected packet)", got)
	}
	if len(d.PerLink) <= 3 {
		t.Fatalf("per-link attribution covers %d links, want at least 4", len(d.PerLink))
	}
}
