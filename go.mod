module rtmac

go 1.22
