package rtmac

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"rtmac/internal/health"
	"rtmac/internal/telemetry"
)

// HealthConfig configures Simulation.EnableHealth.
type HealthConfig struct {
	// SamplePeriod is how often the runtime collector samples runtime/metrics
	// (default 250 ms).
	SamplePeriod time.Duration
	// SlotBudget is the slot-budget watchdog's wall-clock allowance per
	// simulated interval. Zero selects the default — one simulated interval's
	// duration in real time (the live-wire criterion: can this process keep
	// up with its own clock?). Negative disables the watchdog entirely.
	SlotBudget time.Duration
	// ProfileDir, when non-empty, enables the continuous profile ring in that
	// directory.
	ProfileDir string
	// ProfilePeriod is the time between ring capture rounds (default 15 s);
	// CPUProfileDuration is each round's CPU window (default 1 s);
	// MaxProfiles bounds on-disk profiles per type (default 8).
	ProfilePeriod      time.Duration
	CPUProfileDuration time.Duration
	MaxProfiles        int
}

// Health is the runtime health plane attached to a simulation: a
// runtime/metrics collector, a slot-budget watchdog on the interval loop,
// and (optionally) a continuous profile ring. Construct with EnableHealth,
// stop with Stop before reading the final Summary.
//
// The plane observes the host runtime, never the simulation: a fixed-seed
// run produces byte-identical results, CSVs and event streams with or
// without it — except for "stall" events, which report wall-clock truth and
// are inherently non-deterministic.
type Health struct {
	col  *health.Collector
	dog  *health.Watchdog
	ring *health.ProfileRing
}

// EnableHealth attaches the runtime health plane. Call before Run; call
// Stop when the run completes. Collector gauges land in the simulation's
// telemetry registry (rtmac_health_*, rtmac_watchdog_*); watchdog stall
// events join every attached event consumer (streams, flight recorder, SSE);
// Manifest picks up the health summary automatically.
func (s *Simulation) EnableHealth(cfg HealthConfig) (*Health, error) {
	if s.health != nil {
		return nil, fmt.Errorf("rtmac: health plane already enabled")
	}
	h := &Health{}
	h.col = health.NewCollector(health.CollectorConfig{
		Period:   cfg.SamplePeriod,
		Registry: s.nw.Telemetry(),
	})
	if cfg.SlotBudget >= 0 {
		budget := cfg.SlotBudget
		if budget == 0 {
			budget = time.Duration(s.profileInterval) * time.Microsecond
		}
		h.dog = health.NewWatchdog(health.WatchdogConfig{
			Budget:   budget,
			Sink:     simFanout{s: s},
			Registry: s.nw.Telemetry(),
		})
		s.nw.SetWallClockHooks(h.dog.BeginInterval, h.dog.EndInterval)
	}
	if cfg.ProfileDir != "" {
		ring, err := health.NewProfileRing(health.RingConfig{
			Dir:         cfg.ProfileDir,
			CPUDuration: cfg.CPUProfileDuration,
			Period:      cfg.ProfilePeriod,
			MaxPerType:  cfg.MaxProfiles,
			Labels: map[string]string{
				"seed":     strconv.FormatUint(s.manifest.Seed, 10),
				"protocol": s.prot.Name(),
			},
		})
		if err != nil {
			return nil, fmt.Errorf("rtmac: %w", err)
		}
		h.ring = ring
		ring.Start()
	}
	h.col.Start()
	s.health = h
	return h, nil
}

// Stop halts the collector's sampling loop (after one final round, so the
// summary reflects the run's end state) and the profile ring. Idempotent.
func (h *Health) Stop() {
	h.col.Stop()
	if h.ring != nil {
		h.ring.Stop()
	}
}

// Summary condenses the run's health observations for the manifest: peak
// heap, GC pause aggregates, and the watchdog's slot-budget verdict.
func (h *Health) Summary() telemetry.HealthSummary {
	sum := h.col.Summary()
	if h.dog != nil {
		h.dog.MergeInto(&sum)
	}
	return sum
}

// Overruns returns how many intervals overran the slot budget so far (zero
// when the watchdog is disabled).
func (h *Health) Overruns() int64 {
	if h.dog == nil {
		return 0
	}
	return h.dog.Status().Overruns
}

// doc builds the /api/health document for the obs plane.
func (h *Health) doc() health.Doc {
	return health.BuildDoc(h.col, h.dog, h.ring)
}

// healthDoc is the /api/health provider: a disabled-but-identified document
// when no health plane is attached, the live one otherwise. Reading s.health
// from HTTP handlers is safe — EnableHealth is a pre-Run setup call, like
// every other attach.
func (s *Simulation) healthDoc() any {
	if s.health == nil {
		return health.BuildDoc(nil, nil, nil)
	}
	return s.health.doc()
}

// ValidateHealthDoc parses an /api/health JSON document and checks its
// structural invariants. `rtmacsim -checkhealth` and the CI health smoke
// test use it to guard the endpoint.
func ValidateHealthDoc(r io.Reader) error {
	_, err := health.ValidateDoc(r)
	return err
}
