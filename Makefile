# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench bench-json bench-compare bench-gate figures figures-quick telemetry-smoke monitor-smoke conflict-smoke serve-smoke journeys-smoke ledger-smoke health-smoke rundiff-smoke watch-smoke fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable interval benchmarks: one dated BENCH_<date>.json tracking
# ns/interval and intervals/sec per protocol across commits.
bench-json:
	$(GO) run ./cmd/benchtrend

# Diff two benchtrend reports and fail on a >10% ns/interval regression or
# any allocs/op growth:
#   make bench-compare OLD=BENCH_2026-08-01.json NEW=BENCH_2026-08-06.json
bench-compare:
	$(GO) run ./cmd/benchtrend -compare $(OLD) $(NEW)

# Performance regression gate: measure the current tree and compare it
# against the newest committed BENCH_*.json, failing on >10% ns/interval or
# ANY allocs/op growth on any protocol. CI runs this on every push.
bench-gate:
	$(GO) run ./cmd/benchtrend -out /tmp/bench-gate.json
	$(GO) run ./cmd/benchtrend -compare $$(ls BENCH_*.json | sort | tail -1) /tmp/bench-gate.json

# Regenerate every figure of the paper at full fidelity (plus CSVs).
figures:
	$(GO) run ./cmd/figures -csv results -extended

# A quick low-fidelity pass over all figures (~seconds).
figures-quick:
	$(GO) run ./cmd/figures -scale 0.05 -seeds 1 -quiet

# End-to-end check of the observability stack: run a short scenario with
# metric + event dumps and assert the outputs are non-empty and parseable.
telemetry-smoke:
	$(GO) run ./cmd/rtmacsim -protocol dbdp -intervals 200 \
		-telemetry /tmp/rtmac-metrics.prom -events /tmp/rtmac-events.jsonl >/dev/null
	test -s /tmp/rtmac-metrics.prom
	test -s /tmp/rtmac-metrics.prom.manifest.json
	test -s /tmp/rtmac-events.jsonl
	grep -q '^rtmac_tx_total ' /tmp/rtmac-metrics.prom
	$(GO) run ./cmd/rtmacsim -checkevents /tmp/rtmac-events.jsonl

# End-to-end check of the runtime invariant monitor: a short DB-DP run under
# the strict monitor must finish with zero violations, the Perfetto trace
# must parse, the flight-recorder dump must be present and pass the same
# offline audit the live run passed.
monitor-smoke:
	$(GO) run ./cmd/rtmacsim -protocol dbdp -intervals 300 \
		-monitor -strict \
		-perfetto /tmp/rtmac-trace.json \
		-flightrecorder /tmp/rtmac-flight.jsonl \
		-events /tmp/rtmac-monitor-events.jsonl
	$(GO) run ./cmd/rtmacsim -checkperfetto /tmp/rtmac-trace.json
	$(GO) run ./cmd/rtmacsim -checkevents /tmp/rtmac-monitor-events.jsonl
	$(GO) run ./cmd/rtmacsim -checkevents /tmp/rtmac-flight.jsonl
	test -s /tmp/rtmac-flight.jsonl.txt

# End-to-end check of the conflict-graph medium: the two-clique spatial-reuse
# scenario must run invariant-clean under the strict monitor, both the full
# event stream and the flight-recorder dump must pass the offline audit
# (which re-infers the conflict graph from the pinned conflict events), and
# the run must actually reuse the channel — aggregate data airtime above one
# interval's budget with zero collisions.
conflict-smoke:
	$(GO) run ./cmd/rtmacsim -config scenarios/spatial.json \
		-monitor -strict \
		-flightrecorder /tmp/rtmac-conflict-flight.jsonl \
		-events /tmp/rtmac-conflict-events.jsonl | tee /tmp/rtmac-conflict.out
	grep -q '^conflicts(10 links, 20 edges)' /tmp/rtmac-conflict.out
	grep -q 'no invariant violations' /tmp/rtmac-conflict.out
	grep -q ', 0 collided,' /tmp/rtmac-conflict.out
	grep -Eq '^airtime: 1[0-9][0-9]\.[0-9]% data' /tmp/rtmac-conflict.out
	$(GO) run ./cmd/rtmacsim -checkevents /tmp/rtmac-conflict-events.jsonl
	$(GO) run ./cmd/rtmacsim -checkevents /tmp/rtmac-conflict-flight.jsonl
	test -s /tmp/rtmac-conflict-flight.jsonl.txt

# End-to-end check of the live HTTP observability plane: start a -serve run
# in the background, curl every endpoint, validate the scrape with the
# exposition validator, then shut the server down with SIGTERM and require a
# clean exit.
serve-smoke:
	$(GO) build -o /tmp/rtmacsim-smoke ./cmd/rtmacsim
	/tmp/rtmacsim-smoke -protocol dbdp -intervals 2000 \
		-serve 127.0.0.1:19880 >/tmp/rtmac-serve.out 2>&1 & echo $$! > /tmp/rtmac-serve.pid
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:19880/healthz >/dev/null 2>&1 && break; sleep 0.2; done
	curl -fsS http://127.0.0.1:19880/healthz | grep -q ok
	curl -fsS http://127.0.0.1:19880/metrics > /tmp/rtmac-serve-metrics.prom
	curl -fsS http://127.0.0.1:19880/api/progress | grep -q '"planned_intervals": 2000'
	curl -fsS http://127.0.0.1:19880/ | grep -qi '<html'
	/tmp/rtmacsim-smoke -checkmetrics /tmp/rtmac-serve-metrics.prom
	kill -TERM $$(cat /tmp/rtmac-serve.pid)
	for i in $$(seq 1 50); do \
		kill -0 $$(cat /tmp/rtmac-serve.pid) 2>/dev/null || break; sleep 0.2; done
	! kill -0 $$(cat /tmp/rtmac-serve.pid) 2>/dev/null
	grep -q 'run complete' /tmp/rtmac-serve.out

# End-to-end check of the packet-journey tracer: record every packet of a
# short DB-DP run, require the dump to be non-empty, structurally validate
# every span with tracequery -check, and require the summary to account for
# at least one journey.
journeys-smoke:
	$(GO) run ./cmd/rtmacsim -protocol dbdp -intervals 300 \
		-journeys /tmp/rtmac-journeys.jsonl >/dev/null
	test -s /tmp/rtmac-journeys.jsonl
	$(GO) run ./cmd/tracequery -check /tmp/rtmac-journeys.jsonl
	$(GO) run ./cmd/tracequery -by-link /tmp/rtmac-journeys.jsonl | grep -q '^ *all'

# End-to-end check of the run ledger and regression sentinel. Two seeds are
# recorded as two separate processes plus one combined two-seed run, the
# per-seed records are merged with ledgerctl, and `ledgerctl equal` requires
# the merge to carry byte-identical statistics versus the combined run — the
# ledger's core fidelity promise. The combined-vs-merged diff must exit 0
# (they are the same statistics), and a deliberately degraded rtmacsim run
# (-p 0.45 against a 0.7 baseline) must trip the sentinel non-zero.
ledger-smoke:
	rm -rf /tmp/rtmac-ledger
	$(GO) run ./cmd/figures -fig fig3 -scale 0.02 -quiet -seedlist 101 -ledger /tmp/rtmac-ledger >/dev/null
	$(GO) run ./cmd/figures -fig fig3 -scale 0.02 -quiet -seedlist 202 -ledger /tmp/rtmac-ledger >/dev/null
	$(GO) run ./cmd/figures -fig fig3 -scale 0.02 -quiet -seedlist 101,202 -ledger /tmp/rtmac-ledger >/dev/null
	$(GO) run ./cmd/ledgerctl -dir /tmp/rtmac-ledger list
	$(GO) run ./cmd/ledgerctl -dir /tmp/rtmac-ledger merge latest~2 latest~1
	$(GO) run ./cmd/ledgerctl -dir /tmp/rtmac-ledger equal latest latest~1
	$(GO) run ./cmd/ledgerctl -dir /tmp/rtmac-ledger diff latest~1 latest
	$(GO) run ./cmd/rtmacsim -protocol dbdp -intervals 1000 -seed 7 -ledger /tmp/rtmac-ledger >/dev/null
	$(GO) run ./cmd/rtmacsim -protocol dbdp -intervals 1000 -seed 7 -p 0.45 -ledger /tmp/rtmac-ledger >/dev/null
	! $(GO) run ./cmd/ledgerctl -dir /tmp/rtmac-ledger diff latest~1 latest

# End-to-end check of the runtime health plane: run a served simulation with
# the collector, slot-budget watchdog, and continuous profile ring all live;
# require /api/health to serve a structurally valid document that reports the
# plane enabled; then shut down cleanly and require the ring to hold at least
# one CPU profile that `go tool pprof -raw` can parse.
health-smoke:
	rm -rf /tmp/rtmac-ring
	$(GO) build -o /tmp/rtmacsim-health ./cmd/rtmacsim
	/tmp/rtmacsim-health -protocol dbdp -intervals 3000 \
		-serve 127.0.0.1:19881 -health -profilering /tmp/rtmac-ring \
		>/tmp/rtmac-health.out 2>&1 & echo $$! > /tmp/rtmac-health.pid
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:19881/healthz >/dev/null 2>&1 && break; sleep 0.2; done
	for i in $$(seq 1 100); do \
		grep -q '"type":"cpu"' /tmp/rtmac-ring/manifest.jsonl 2>/dev/null && break; sleep 0.2; done
	curl -fsS http://127.0.0.1:19881/api/health > /tmp/rtmac-health.json
	/tmp/rtmacsim-health -checkhealth /tmp/rtmac-health.json
	grep -Eq '"enabled": ?true' /tmp/rtmac-health.json
	kill -TERM $$(cat /tmp/rtmac-health.pid)
	for i in $$(seq 1 50); do \
		kill -0 $$(cat /tmp/rtmac-health.pid) 2>/dev/null || break; sleep 0.2; done
	! kill -0 $$(cat /tmp/rtmac-health.pid) 2>/dev/null
	grep -q '"type":"cpu"' /tmp/rtmac-ring/manifest.jsonl
	$(GO) tool pprof -raw $$(ls /tmp/rtmac-ring/cpu-*.pprof | head -1) > /dev/null
	grep -q 'health:' /tmp/rtmac-health.out

# End-to-end check of the differential run explainer. Two identical-seed runs
# must compare byte-equal (exit 0); a third run with one extra arrival
# injected at interval 123 must diverge (exit 1) with the first-divergence
# pointer landing exactly on the perturbed interval, for both the event
# stream and the journey key-join. Exit 2 (usage/IO) fails the target.
rundiff-smoke:
	rm -rf /tmp/rtmac-rundiff && mkdir -p /tmp/rtmac-rundiff
	$(GO) build -o /tmp/rtmacsim-rundiff ./cmd/rtmacsim
	$(GO) build -o /tmp/rundiff-smoke ./cmd/rundiff
	/tmp/rtmacsim-rundiff -protocol dbdp -intervals 400 -seed 7 \
		-record-for-diff /tmp/rtmac-rundiff/a >/dev/null
	/tmp/rtmacsim-rundiff -protocol dbdp -intervals 400 -seed 7 \
		-record-for-diff /tmp/rtmac-rundiff/b >/dev/null
	/tmp/rundiff-smoke -check-equal /tmp/rtmac-rundiff/a.events.jsonl /tmp/rtmac-rundiff/b.events.jsonl
	/tmp/rundiff-smoke -check-equal /tmp/rtmac-rundiff/a.journeys.jsonl /tmp/rtmac-rundiff/b.journeys.jsonl
	/tmp/rtmacsim-rundiff -protocol dbdp -intervals 400 -seed 7 \
		-record-for-diff /tmp/rtmac-rundiff/p -perturb-interval 123 -perturb-link 2 >/dev/null
	/tmp/rundiff-smoke /tmp/rtmac-rundiff/a.events.jsonl /tmp/rtmac-rundiff/p.events.jsonl \
		> /tmp/rtmac-rundiff/events.txt; test $$? -eq 1
	grep -q 'k=123 ' /tmp/rtmac-rundiff/events.txt
	/tmp/rundiff-smoke /tmp/rtmac-rundiff/a.journeys.jsonl /tmp/rtmac-rundiff/p.journeys.jsonl \
		> /tmp/rtmac-rundiff/journeys.txt; test $$? -eq 1
	grep -q 'delivery ratio' /tmp/rtmac-rundiff/journeys.txt

# End-to-end check of the SLO conformance plane. The feasible factory
# scenario must run -watch clean (zero alerts), feascheck -json must agree it
# is feasible and emit the requirement vector, and rtmacwatch must audit the
# recorded stream clean against those targets (exit 0). A replay of the same
# scenario with an injected arrival burst must raise an alert (exit 1
# exactly — 2 would be a tool failure) and leave a non-empty alert artifact
# containing the expiry spike.
watch-smoke:
	$(GO) run ./cmd/rtmacsim -config scenarios/factory.json -watch \
		-events /tmp/rtmac-watch-events.jsonl | tee /tmp/rtmac-watch.out
	grep -q 'no SLO alerts' /tmp/rtmac-watch.out
	$(GO) run ./cmd/feascheck -config scenarios/factory.json -json > /tmp/rtmac-watch-slo.json
	grep -q '"feasible": true' /tmp/rtmac-watch-slo.json
	$(GO) run ./cmd/rtmacwatch -check -slo /tmp/rtmac-watch-slo.json /tmp/rtmac-watch-events.jsonl
	$(GO) run ./cmd/rtmacsim -config scenarios/factory.json -watch \
		-perturb-interval 600 -perturb-link 0 -perturb-extra 40 \
		-events /tmp/rtmac-watch-perturbed.jsonl | tee /tmp/rtmac-watch-perturbed.out
	grep -q 'expiry_spike' /tmp/rtmac-watch-perturbed.out
	$(GO) run ./cmd/rtmacwatch -check -alerts /tmp/rtmac-watch-alerts.jsonl \
		-scenario scenarios/factory.json /tmp/rtmac-watch-perturbed.jsonl \
		> /tmp/rtmac-watch-verdict.out; test $$? -eq 1
	test -s /tmp/rtmac-watch-alerts.jsonl
	grep -q 'expiry_spike' /tmp/rtmac-watch-alerts.jsonl

fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./scenario
	$(GO) test -fuzz=FuzzDecodeSLO -fuzztime=30s ./scenario
	$(GO) test -fuzz=FuzzDecodeTopology -fuzztime=30s ./scenario
	$(GO) test -fuzz=FuzzRankUnrank -fuzztime=30s ./internal/perm
	$(GO) test -fuzz=FuzzAdjacentSwapCodec -fuzztime=30s ./internal/perm
	$(GO) test -fuzz=FuzzValidatePrometheus -fuzztime=30s ./internal/telemetry
	$(GO) test -fuzz=FuzzDecodeEvents -fuzztime=30s ./internal/telemetry

cover:
	$(GO) test -cover ./...

clean:
	rm -rf results
