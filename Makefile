# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench figures figures-quick telemetry-smoke fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper at full fidelity (plus CSVs).
figures:
	$(GO) run ./cmd/figures -csv results -extended

# A quick low-fidelity pass over all figures (~seconds).
figures-quick:
	$(GO) run ./cmd/figures -scale 0.05 -seeds 1 -quiet

# End-to-end check of the observability stack: run a short scenario with
# metric + event dumps and assert the outputs are non-empty and parseable.
telemetry-smoke:
	$(GO) run ./cmd/rtmacsim -protocol dbdp -intervals 200 \
		-telemetry /tmp/rtmac-metrics.prom -events /tmp/rtmac-events.jsonl >/dev/null
	test -s /tmp/rtmac-metrics.prom
	test -s /tmp/rtmac-metrics.prom.manifest.json
	test -s /tmp/rtmac-events.jsonl
	grep -q '^rtmac_tx_total ' /tmp/rtmac-metrics.prom
	$(GO) run ./cmd/rtmacsim -checkevents /tmp/rtmac-events.jsonl

fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./scenario
	$(GO) test -fuzz=FuzzRankUnrank -fuzztime=30s ./internal/perm

cover:
	$(GO) test -cover ./...

clean:
	rm -rf results
