# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench figures figures-quick fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper at full fidelity (plus CSVs).
figures:
	$(GO) run ./cmd/figures -csv results -extended

# A quick low-fidelity pass over all figures (~seconds).
figures-quick:
	$(GO) run ./cmd/figures -scale 0.05 -seeds 1 -quiet

fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./scenario
	$(GO) test -fuzz=FuzzRankUnrank -fuzztime=30s ./internal/perm

cover:
	$(GO) test -cover ./...

clean:
	rm -rf results
