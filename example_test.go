package rtmac_test

import (
	"fmt"

	"rtmac"
)

// Compare the decentralized DB-DP protocol against the centralized LDF
// policy on the same workload — the paper's headline claim in a few lines.
func ExampleSimulation_comparison() {
	run := func(p rtmac.Protocol) (float64, int) {
		links := make([]rtmac.Link, 8)
		for i := range links {
			links[i] = rtmac.Link{
				SuccessProb:   0.7,
				Arrivals:      rtmac.MustBernoulliArrivals(0.6),
				DeliveryRatio: 0.95,
			}
		}
		sim, err := rtmac.NewSimulation(rtmac.Config{
			Seed:     1,
			Profile:  rtmac.ControlProfile(),
			Links:    links,
			Protocol: p,
		})
		if err != nil {
			panic(err)
		}
		if err := sim.Run(5000); err != nil {
			panic(err)
		}
		rep := sim.Report()
		return rep.TotalDeficiency, rep.Channel.Collisions
	}
	dbdpDef, dbdpColl := run(rtmac.DBDP())
	ldfDef, _ := run(rtmac.LDF())
	fmt.Printf("DB-DP fulfills: %v (collisions: %d)\n", dbdpDef < 0.05, dbdpColl)
	fmt.Printf("LDF fulfills: %v\n", ldfDef < 0.05)
	// Output:
	// DB-DP fulfills: true (collisions: 0)
	// LDF fulfills: true
}

// Size a deployment before building it: the feasibility API answers whether
// a requirement vector is achievable by ANY policy.
func ExampleCheckFeasibility() {
	links := make([]rtmac.Link, 12)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.78),
			DeliveryRatio: 0.99,
		}
	}
	res, err := rtmac.CheckFeasibility(rtmac.Config{
		Seed:    1,
		Profile: rtmac.ControlProfile(),
		Links:   links,
	}, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("capacity: %d slots/interval, demanded: %.1f\n",
		res.CapacitySlots, res.WorkloadSlots)
	fmt.Println("feasible:", res.Feasible)
	// Output:
	// capacity: 16 slots/interval, demanded: 13.2
	// feasible: false
}
