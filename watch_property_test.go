package rtmac_test

import (
	"fmt"
	"testing"

	"rtmac"
)

// watchPropertyProtocols is every shipped protocol: the conformance plane
// must stay silent on any of them when the offered load leaves comfortable
// headroom, because the SLO targets describe the requirement, not DB-DP.
func watchPropertyProtocols() []rtmac.Protocol {
	return []rtmac.Protocol{
		rtmac.DBDP(),
		rtmac.LDF(),
		rtmac.ELDF(rtmac.PaperInfluence()),
		rtmac.FCSMA(),
		rtmac.FrameCSMA(),
		rtmac.TDMA(),
		rtmac.DCF(),
	}
}

// easyConfig is a 4-link network with generous headroom: arrivals 0.2
// packets/interval at p = 0.8 with an 0.8 delivery-ratio requirement, so
// q = 0.16 while even a contention-based protocol delivers well above it.
func easyConfig(seed uint64, prot rtmac.Protocol) rtmac.Config {
	links := make([]rtmac.Link, 4)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.8,
			Arrivals:      rtmac.MustBernoulliArrivals(0.2),
			DeliveryRatio: 0.8,
		}
	}
	return rtmac.Config{
		Seed: seed, Profile: rtmac.ControlProfile(), Links: links, Protocol: prot,
	}
}

// TestWatchSilentOnFeasibleConfigs is the false-positive property: across
// every protocol and several seeds, a comfortably feasible network raises
// zero alerts. 1600 intervals cover the burn-rate priming window (1000), the
// spike warmup (300), and three full drift windows.
func TestWatchSilentOnFeasibleConfigs(t *testing.T) {
	for _, prot := range watchPropertyProtocols() {
		for _, seed := range []uint64{1, 2, 3} {
			prot, seed := prot, seed
			t.Run(fmt.Sprintf("%s/seed%d", prot.Label(), seed), func(t *testing.T) {
				t.Parallel()
				s, err := rtmac.NewSimulation(easyConfig(seed, prot))
				if err != nil {
					t.Fatal(err)
				}
				w, err := s.EnableWatch(rtmac.WatchConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Run(1600); err != nil {
					t.Fatal(err)
				}
				if n := w.Count(); n != 0 {
					t.Fatalf("feasible %s run raised %d alerts, first: %v",
						prot.Label(), n, w.Alerts()[0])
				}
			})
		}
	}
}

// TestWatchFiresOnInfeasibleScaling is the sensitivity property: scaling the
// paper's control scenario to 15 links (workload ≈ 16.5 of 11 slots) must
// raise a critical alert, and within a bounded delay — the burn-rate
// detector's slow window primes at interval 1000, so the first alert must
// land shortly after.
func TestWatchFiresOnInfeasibleScaling(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			links := make([]rtmac.Link, 15)
			for i := range links {
				links[i] = rtmac.Link{
					SuccessProb:   0.7,
					Arrivals:      rtmac.MustBernoulliArrivals(0.78),
					DeliveryRatio: 0.99,
				}
			}
			s, err := rtmac.NewSimulation(rtmac.Config{
				Seed: seed, Profile: rtmac.ControlProfile(), Links: links, Protocol: rtmac.DBDP(),
			})
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.EnableWatch(rtmac.WatchConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(1500); err != nil {
				t.Fatal(err)
			}
			if w.Count() == 0 {
				t.Fatal("infeasible 15-link run raised no alerts")
			}
			alerts := w.Alerts()
			if first := alerts[0].K; first > 1200 {
				t.Errorf("first alert at interval %d, want within 200 of the priming window", first)
			}
			by := w.ByDetector()
			if by["burn_rate"] == 0 && by["debt_drift"] == 0 {
				t.Errorf("expected a critical capacity detector, got %v", by)
			}
		})
	}
}

// TestWatchFiresOnPerturbation: an injected arrival burst must trip the
// expiry-spike detector in the very interval it lands (its baseline is
// frozen after warmup, so the spike cannot poison its own reference).
func TestWatchFiresOnPerturbation(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := easyConfig(seed, rtmac.DBDP())
			cfg.Perturb = &rtmac.Perturbation{K: 600, Link: 0, Extra: 40}
			s, err := rtmac.NewSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.EnableWatch(rtmac.WatchConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(900); err != nil {
				t.Fatal(err)
			}
			if w.ByDetector()["expiry_spike"] == 0 {
				t.Fatalf("perturbation raised no expiry_spike alert (detectors: %v)", w.ByDetector())
			}
			for _, a := range w.Alerts() {
				if a.Detector == "expiry_spike" && a.State == "firing" {
					if a.K < 600 || a.K > 605 {
						t.Errorf("expiry_spike fired at interval %d, want within [600, 605]", a.K)
					}
					return
				}
			}
		})
	}
}
