package rtmac_test

import (
	"bytes"
	"strings"
	"testing"

	"rtmac"
)

func monitorTestSim(t *testing.T, p rtmac.Protocol) *rtmac.Simulation {
	t.Helper()
	links := make([]rtmac.Link, 6)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.78),
			DeliveryRatio: 0.99,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     7,
		Profile:  rtmac.ControlProfile(),
		Links:    links,
		Protocol: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMonitorCleanDBDPRun(t *testing.T) {
	s := monitorTestSim(t, rtmac.DBDP())
	mon, err := s.EnableMonitor(rtmac.MonitorConfig{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200); err != nil {
		t.Fatalf("strict run failed: %v", err)
	}
	if n := mon.Count(); n != 0 {
		t.Fatalf("%d violations on a clean run, first: %v", n, mon.Violations()[0])
	}
	if mon.FlightRecorderEvents() == 0 {
		t.Error("flight recorder saw no events")
	}
}

func TestMonitorDoesNotPerturbTrajectory(t *testing.T) {
	plain := monitorTestSim(t, rtmac.DBDP())
	if err := plain.Run(150); err != nil {
		t.Fatal(err)
	}
	monitored := monitorTestSim(t, rtmac.DBDP())
	if _, err := monitored.EnableMonitor(rtmac.MonitorConfig{Strict: true}); err != nil {
		t.Fatal(err)
	}
	if err := monitored.Run(150); err != nil {
		t.Fatal(err)
	}
	a, b := plain.Report(), monitored.Report()
	if a.TotalDeficiency != b.TotalDeficiency || a.Channel.Transmissions != b.Channel.Transmissions {
		t.Fatalf("monitoring changed the trajectory: %v/%d vs %v/%d",
			a.TotalDeficiency, a.Channel.Transmissions, b.TotalDeficiency, b.Channel.Transmissions)
	}
}

func TestMonitorNoFalsePositivesOnDCF(t *testing.T) {
	s := monitorTestSim(t, rtmac.DCF())
	mon, err := s.EnableMonitor(rtmac.MonitorConfig{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(150); err != nil {
		t.Fatalf("DCF under the strict monitor failed: %v", err)
	}
	if n := mon.Count(); n != 0 {
		t.Fatalf("%d false positives on DCF: %v", n, mon.Violations()[0])
	}
}

func TestMonitorFlightRecorderDumpAuditsClean(t *testing.T) {
	s := monitorTestSim(t, rtmac.DBDP())
	mon, err := s.EnableMonitor(rtmac.MonitorConfig{Strict: true, FlightRecorderIntervals: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if err := mon.WriteFlightRecorder(&dump); err != nil {
		t.Fatal(err)
	}
	events, err := rtmac.DecodeEvents(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("dump does not decode: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("dump is empty")
	}
	// The dump starts mid-run; the offline audit must re-anchor, not flag it.
	violations, err := rtmac.AuditEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("flight-recorder dump flagged: %v", violations)
	}
	var timeline bytes.Buffer
	if err := mon.WriteFlightRecorderTimeline(&timeline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(timeline.String(), "== interval ") {
		t.Error("timeline has no interval headers")
	}
}

func TestMonitorFlightRecorderDisabled(t *testing.T) {
	s := monitorTestSim(t, rtmac.DBDP())
	mon, err := s.EnableMonitor(rtmac.MonitorConfig{FlightRecorderIntervals: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := mon.WriteFlightRecorder(&b); err == nil {
		t.Error("disabled recorder dumped without error")
	}
}

func TestExportPerfettoValidTrace(t *testing.T) {
	s := monitorTestSim(t, rtmac.DBDP())
	var out bytes.Buffer
	trace := s.ExportPerfetto(&out)
	if err := s.Run(200); err != nil {
		t.Fatal(err)
	}
	if err := trace.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := rtmac.ValidatePerfettoTrace(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("200-interval trace invalid: %v", err)
	}
	if int64(n) != trace.Count() {
		t.Errorf("validator counted %d events, exporter wrote %d", n, trace.Count())
	}
	if n < 200 {
		t.Errorf("only %d trace events for 200 intervals", n)
	}
}

func TestSinksCompose(t *testing.T) {
	// JSONL stream + monitor + Perfetto attached together: every consumer
	// sees the run, and the stream still decodes and audits clean.
	s := monitorTestSim(t, rtmac.DBDP())
	var jsonl, trace bytes.Buffer
	stream := s.StreamEvents(&jsonl)
	mon, err := s.EnableMonitor(rtmac.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pt := s.ExportPerfetto(&trace)
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pt.Flush(); err != nil {
		t.Fatal(err)
	}
	if stream.Count() == 0 || pt.Count() == 0 || mon.FlightRecorderEvents() == 0 {
		t.Fatalf("a sink saw nothing: stream=%d perfetto=%d recorder=%d",
			stream.Count(), pt.Count(), mon.FlightRecorderEvents())
	}
	events, err := rtmac.DecodeEvents(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	violations, err := rtmac.AuditEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("composed-sink stream flagged: %v", violations)
	}
	if _, err := rtmac.ValidatePerfettoTrace(bytes.NewReader(trace.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestAuditEventsEmptyStream(t *testing.T) {
	if _, err := rtmac.AuditEvents(nil); err == nil {
		t.Error("empty stream audited without error")
	}
}
