package rtmac_test

import (
	"bytes"
	"strings"
	"testing"

	"rtmac"
	"rtmac/internal/rundiff"
	"rtmac/internal/telemetry"
)

func controlSim(t *testing.T, seed uint64) *rtmac.Simulation {
	t.Helper()
	links := make([]rtmac.Link, 10)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.78),
			DeliveryRatio: 0.99,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     seed,
		Profile:  rtmac.ControlProfile(),
		Links:    links,
		Protocol: rtmac.DBDP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEventStreamDeterminism is the acceptance gate for reproducible
// observability: two runs with equal seeds and configurations must produce
// byte-identical JSONL event streams.
func TestEventStreamDeterminism(t *testing.T) {
	run := func() []byte {
		s := controlSim(t, 7)
		var buf bytes.Buffer
		stream := s.StreamEvents(&buf)
		if err := s.Run(100); err != nil {
			t.Fatal(err)
		}
		if err := stream.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("event stream empty")
	}
	// rundiff -check-equal semantics enforce the contract: equality must be
	// byte-exact, and a breach names its first divergent event rather than
	// just "streams differ".
	d, err := rundiff.DiffEvents(bytes.NewReader(a), bytes.NewReader(b), rundiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal {
		div := d.Divergence
		t.Fatalf("same-seed event streams differ at event %d: k=%d link=%d kind=%s\n  a: %s\n  b: %s",
			div.Index, div.K(), div.Link(), div.Kind(), div.RawA, div.RawB)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("rundiff reported equality but raw bytes differ (header handling bug)")
	}
	// A different seed must produce a different trajectory — otherwise the
	// determinism above would be vacuous.
	s := controlSim(t, 8)
	var buf bytes.Buffer
	stream := s.StreamEvents(&buf)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, buf.Bytes()) {
		t.Fatal("different seeds produced identical event streams")
	}
}

func TestEventStreamParsesAndCovers(t *testing.T) {
	s := controlSim(t, 3)
	var buf bytes.Buffer
	stream := s.StreamEvents(&buf)
	const intervals = 50
	if err := s.Run(intervals); err != nil {
		t.Fatal(err)
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != stream.Count() {
		t.Errorf("decoded %d events, stream reports %d", len(events), stream.Count())
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EventInterval] != intervals {
		t.Errorf("interval events = %d, want %d", kinds[telemetry.EventInterval], intervals)
	}
	if kinds[telemetry.EventDebt] != intervals {
		t.Errorf("debt events = %d, want %d", kinds[telemetry.EventDebt], intervals)
	}
	// DB-DP draws one swap pair per interval on N >= 2 links.
	if kinds[telemetry.EventSwap] != intervals {
		t.Errorf("swap events = %d, want %d", kinds[telemetry.EventSwap], intervals)
	}
	if kinds[telemetry.EventTx] == 0 {
		t.Error("no tx events")
	}
	// Tx event count must match the channel counter.
	if txTotal, err := s.Telemetry().Counter("rtmac_tx_total"); err != nil || int(txTotal) != kinds[telemetry.EventTx] {
		t.Errorf("tx events = %d, rtmac_tx_total = %d (err %v)", kinds[telemetry.EventTx], txTotal, err)
	}
}

func TestTelemetryExposition(t *testing.T) {
	s := controlSim(t, 1)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	var prom strings.Builder
	if err := s.Telemetry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rtmac_tx_total ",
		"rtmac_tx_delivered_total ",
		"rtmac_airtime_busy_us_total ",
		"rtmac_channel_utilization ",
		"rtmac_swap_accepted_total ",
		"rtmac_swap_rejected_total ",
		"rtmac_debt_positive_bucket{le=",
		"rtmac_backoff_slots_count ",
		"rtmac_intervals_total 100",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus dump missing %q", want)
		}
	}
	var js strings.Builder
	if err := s.Telemetry().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"rtmac_tx_total\"") {
		t.Error("JSON snapshot missing rtmac_tx_total")
	}
	// The compatibility view and the registry must agree.
	rep := s.Report()
	txTotal, err := s.Telemetry().Counter("rtmac_tx_total")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Channel.Transmissions != int(txTotal) {
		t.Errorf("Report transmissions %d != registry %d", rep.Channel.Transmissions, txTotal)
	}
	if _, err := s.Telemetry().Counter("rtmac_no_such_metric"); err == nil {
		t.Error("unknown counter lookup did not error")
	}
}

func TestManifest(t *testing.T) {
	s := controlSim(t, 9)
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.Manifest("telemetry-test", map[string]string{"note": "unit"}).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"\"seed\": 9",
		"\"protocol\": \"dbdp[glauber[log(100),R=10]]\"",
		"\"profile\": \"control\"",
		"\"links\": 10",
		"\"intervals\": 20",
		"\"sim_time_us\": 40000",
		"\"note\": \"unit\"",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("manifest missing %q:\n%s", want, sb.String())
		}
	}
}

// TestTraceSharesTelemetryHook verifies the packet recorder can ride the
// telemetry event stream instead of a private medium hook and reconstruct
// the same records.
func TestTraceSharesTelemetryHook(t *testing.T) {
	s := controlSim(t, 5)
	tr, err := s.EnableTrace(4096)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stream := s.StreamEvents(&buf)
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx := 0
	for _, ev := range events {
		if ev.Kind == telemetry.EventTx {
			tx++
		}
	}
	if int64(tx) != tr.Total() {
		t.Errorf("tx events = %d, trace recorder saw %d", tx, tr.Total())
	}
}
