package rtmac

import (
	"fmt"
	"io"

	"rtmac/internal/journey"
)

// Journey is one packet's recorded lifecycle: identity (interval, link,
// arrival index), the contention rounds its link entered, every transmission
// attempt with its channel outcome, and the terminal cause — delivered, or a
// deadline miss attributed to exactly one of expired-in-queue,
// lost-to-channel, lost-to-collision, never-won-contention.
type Journey = journey.Journey

// Attribution tallies terminal causes over recorded journeys. Its invariant:
// Total = Delivered + Missed(), exactly.
type Attribution = journey.Attribution

// DebtPoint is one interval's entry in a link's debt timeline.
type DebtPoint = journey.DebtPoint

// JourneyCauses lists the terminal causes in canonical reporting order.
func JourneyCauses() []string { return journey.Causes() }

// DecodeJourneys parses a journeys JSONL stream produced by EnableJourneys,
// stopping at the first malformed line.
func DecodeJourneys(r io.Reader) ([]Journey, error) { return journey.Decode(r) }

// Journeys is the packet-journey tracer attached to a simulation.
type Journeys struct {
	t *journey.Tracer
}

// EnableJourneys starts sampled per-packet lifecycle tracing: every
// sample-th arriving packet (1 = all) is followed from arrival through
// contention and transmission attempts to delivery or attributed expiry, and
// streamed as one JSONL line when it terminates. w may be nil to keep only
// the in-memory attribution tallies and per-link debt timelines. Call before
// Run and Flush when the run completes. With sample == 1 the attribution
// reconciles exactly with the delivered/expired totals.
func (s *Simulation) EnableJourneys(w io.Writer, sample int) (*Journeys, error) {
	t, err := journey.NewTracer(s.nw.Links(), w, sample)
	if err != nil {
		return nil, fmt.Errorf("rtmac: %w", err)
	}
	if err := s.nw.SetJourneyTracer(t); err != nil {
		return nil, fmt.Errorf("rtmac: %w", err)
	}
	s.journeys = t
	return &Journeys{t: t}, nil
}

// Flush drains the JSONL buffer and returns the first stream error, if any.
func (j *Journeys) Flush() error { return j.t.Flush() }

// Count returns how many journeys were written to the stream so far.
func (j *Journeys) Count() int64 { return j.t.Count() }

// Seen returns how many packet arrivals were observed, sampled or not.
func (j *Journeys) Seen() int64 { return j.t.Seen() }

// Attribution returns the network-wide terminal-cause tally.
func (j *Journeys) Attribution() Attribution { return j.t.Attribution() }

// LinkAttribution returns one link's terminal-cause tally.
func (j *Journeys) LinkAttribution(link int) (Attribution, error) {
	return j.t.LinkAttribution(link)
}

// Timeline returns a chronological copy of one link's debt timeline: the
// most recent intervals' post-update debts annotated with the interval's
// wins, losses, collisions and committed priority swaps.
func (j *Journeys) Timeline(link int) ([]DebtPoint, error) { return j.t.Timeline(link) }

// Swaps returns how many intervals committed a priority swap promoting
// (up) and demoting (down) the link.
func (j *Journeys) Swaps(link int) (up, down int64, err error) { return j.t.Swaps(link) }
