package rtmac_test

import (
	"fmt"
	"testing"

	"rtmac"
	"rtmac/internal/experiment"
	"rtmac/internal/perm"
	"rtmac/internal/sim"
)

// ---------------------------------------------------------------------------
// Figure benchmarks: one per data figure in the paper's evaluation. Each
// iteration regenerates the figure at a reduced horizon (the fidelity knob is
// IntervalScale; raise it toward 1 to approach the paper's exact setup — see
// cmd/figures for full-fidelity runs). Reported custom metrics carry the
// headline numbers so `go test -bench` output doubles as a results table:
// for sweeps, the end-of-sweep deficiency per protocol; for fig5, the final
// windowed throughput; for fig6, the top/bottom priority throughputs.
// ---------------------------------------------------------------------------

const benchScale = 0.02 // 100 video intervals / 400 control intervals

func benchFigure(b *testing.B, id string) {
	fig, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiment.RunOptions{Seeds: 1, IntervalScale: benchScale}
	var res *experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.BaseSeed = uint64(i) + 1
		res, err = fig.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, s := range res.Series {
		if len(s.Y) == 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1], sanitizeMetric(s.Label)+"_final")
	}
}

func sanitizeMetric(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func BenchmarkFig3SymmetricVideoSweep(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFig4VideoRatioSweep(b *testing.B)      { benchFigure(b, "fig4") }
func BenchmarkFig5Convergence(b *testing.B)          { benchFigure(b, "fig5") }
func BenchmarkFig6PriorityProfile(b *testing.B)      { benchFigure(b, "fig6") }
func BenchmarkFig7AsymmetricSweep(b *testing.B)      { benchFigure(b, "fig7") }
func BenchmarkFig8AsymmetricRatioSweep(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFig9ControlSweep(b *testing.B)         { benchFigure(b, "fig9") }
func BenchmarkFig10ControlRatioSweep(b *testing.B)   { benchFigure(b, "fig10") }

// ---------------------------------------------------------------------------
// Protocol throughput benchmarks: simulated intervals per second for each
// policy on the paper's control scenario. These measure the simulator, not
// the wireless channel; they are the numbers to watch when optimizing.
// ---------------------------------------------------------------------------

func benchProtocolIntervals(b *testing.B, protocol rtmac.Protocol) {
	links := make([]rtmac.Link, 10)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.78),
			DeliveryRatio: 0.99,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     1,
		Profile:  rtmac.ControlProfile(),
		Links:    links,
		Protocol: protocol,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkIntervalDBDP(b *testing.B)  { benchProtocolIntervals(b, rtmac.DBDP()) }
func BenchmarkIntervalLDF(b *testing.B)   { benchProtocolIntervals(b, rtmac.LDF()) }
func BenchmarkIntervalFCSMA(b *testing.B) { benchProtocolIntervals(b, rtmac.FCSMA()) }
func BenchmarkIntervalDCF(b *testing.B)   { benchProtocolIntervals(b, rtmac.DCF()) }

// BenchmarkIntervalConflictGraph prices the spatial-reuse medium: the same
// control workload as BenchmarkIntervalDBDP, but on a two-clique conflict
// graph so the per-neighborhood contention clock, the local DP backoff ranks,
// and the medium's neighborhood busy counters are all on the hot path.
// Compare against BenchmarkIntervalDBDP for the graph-mode overhead.
func BenchmarkIntervalConflictGraph(b *testing.B) {
	conflicts, err := rtmac.CliqueConflicts(10, [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	if err != nil {
		b.Fatal(err)
	}
	links := make([]rtmac.Link, 10)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.78),
			DeliveryRatio: 0.99,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:      1,
		Profile:   rtmac.ControlProfile(),
		Links:     links,
		Conflicts: conflicts,
		Protocol:  rtmac.DBDP(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntervalDBDPLargeNetwork stresses the video scenario with 20
// bursty links per interval.
func BenchmarkIntervalDBDPLargeNetwork(b *testing.B) {
	links := make([]rtmac.Link, 20)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustVideoArrivals(0.55),
			DeliveryRatio: 0.9,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     1,
		Profile:  rtmac.VideoProfile(),
		Links:    links,
		Protocol: rtmac.DBDP(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks: design choices DESIGN.md calls out. Each reports the
// total deficiency reached on a fixed workload as a custom metric, so
// comparing variants is a single -bench run.
// ---------------------------------------------------------------------------

func benchAblation(b *testing.B, protocol rtmac.Protocol) {
	const intervals = 400
	var deficiency float64
	for i := 0; i < b.N; i++ {
		links := make([]rtmac.Link, 20)
		for j := range links {
			links[j] = rtmac.Link{
				SuccessProb:   0.7,
				Arrivals:      rtmac.MustVideoArrivals(0.55),
				DeliveryRatio: 0.9,
			}
		}
		s, err := rtmac.NewSimulation(rtmac.Config{
			Seed:     uint64(i) + 1,
			Profile:  rtmac.VideoProfile(),
			Links:    links,
			Protocol: protocol,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(intervals); err != nil {
			b.Fatal(err)
		}
		deficiency = s.TotalDeficiency()
	}
	b.ReportMetric(deficiency, "deficiency")
}

// Influence-function choice (paper uses log; identity recovers LDF-style
// weights; sqrt is an intermediate).
func BenchmarkAblationInfluencePaperLog(b *testing.B) {
	benchAblation(b, rtmac.DBDP())
}

func BenchmarkAblationInfluenceIdentity(b *testing.B) {
	benchAblation(b, rtmac.DBDP(rtmac.WithInfluence(rtmac.IdentityInfluence(), 10)))
}

func BenchmarkAblationInfluenceSqrt(b *testing.B) {
	f, err := rtmac.PowerInfluence(0.5)
	if err != nil {
		b.Fatal(err)
	}
	benchAblation(b, rtmac.DBDP(rtmac.WithInfluence(f, 10)))
}

// Glauber constant R (Eq. 14): paper uses 10.
func BenchmarkAblationGlauberR1(b *testing.B) {
	benchAblation(b, rtmac.DBDP(rtmac.WithInfluence(rtmac.PaperInfluence(), 1)))
}

func BenchmarkAblationGlauberR100(b *testing.B) {
	benchAblation(b, rtmac.DBDP(rtmac.WithInfluence(rtmac.PaperInfluence(), 100)))
}

// Multi-pair swapping (Remark 6): more pairs mix the priority chain faster
// at slightly higher backoff overhead.
func BenchmarkAblationSwapPairs1(b *testing.B) { benchAblation(b, rtmac.DBDP()) }
func BenchmarkAblationSwapPairs3(b *testing.B) {
	benchAblation(b, rtmac.DBDP(rtmac.WithSwapPairs(3)))
}
func BenchmarkAblationSwapPairs6(b *testing.B) {
	benchAblation(b, rtmac.DBDP(rtmac.WithSwapPairs(6)))
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAt(sim.Time(i), fn)
		e.Step()
	}
}

func BenchmarkEngineTimerCancel(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.ScheduleAt(sim.Time(i)+1000, fn)
		e.Cancel(t)
	}
}

func BenchmarkStationaryDistributionN6(b *testing.B) {
	mu := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perm.StationaryFromMu(mu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermutationRankUnrank(b *testing.B) {
	p := perm.Identity(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Rank()
		q, err := perm.Unrank(8, r)
		if err != nil {
			b.Fatal(err)
		}
		p = q
	}
}

// Example of using the benchmark harness programmatically.
func ExampleNewSimulation() {
	links := make([]rtmac.Link, 4)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   1.0,
			Arrivals:      rtmac.FixedArrivals(1),
			DeliveryRatio: 1.0,
		}
	}
	s, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     1,
		Profile:  rtmac.ControlProfile(),
		Links:    links,
		Protocol: rtmac.DBDP(),
	})
	if err != nil {
		panic(err)
	}
	if err := s.Run(1000); err != nil {
		panic(err)
	}
	fmt.Printf("deficiency: %.4f collisions: %d\n",
		s.TotalDeficiency(), s.Report().Channel.Collisions)
	// Output:
	// deficiency: 0.0000 collisions: 0
}

// Baseline comparison bench: the four alternatives on the identical video
// workload (frame-based CSMA shows the open-loop adaptivity penalty the
// paper's introduction describes; DCF shows the collision penalty).
func BenchmarkAblationBaselineDBDP(b *testing.B)      { benchAblation(b, rtmac.DBDP()) }
func BenchmarkAblationBaselineLDF(b *testing.B)       { benchAblation(b, rtmac.LDF()) }
func BenchmarkAblationBaselineFCSMA(b *testing.B)     { benchAblation(b, rtmac.FCSMA()) }
func BenchmarkAblationBaselineFrameCSMA(b *testing.B) { benchAblation(b, rtmac.FrameCSMA()) }
func BenchmarkAblationBaselineDCF(b *testing.B)       { benchAblation(b, rtmac.DCF()) }
