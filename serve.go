package rtmac

import (
	"rtmac/internal/obs"
	"rtmac/internal/telemetry"
)

// Observability is a live HTTP observability plane attached to a running
// simulation. It serves, on the address given to ServeObservability:
//
//	/             an auto-refreshing HTML dashboard
//	/healthz      a liveness probe
//	/metrics      the simulation's metric registry, Prometheus text format
//	/api/progress interval-level run progress as JSON
//	/events       the structured event stream as Server-Sent Events
//
// The plane is passive: with no HTTP clients connected it costs the run
// nothing beyond event construction, and SSE subscribers that fall behind
// drop events rather than stall the simulation.
type Observability struct {
	plane *obs.Plane
}

// ServeObservability starts an observability plane for this simulation on
// addr (e.g. ":8080", or "127.0.0.1:0" to pick a free port — read it back
// with Addr). plannedIntervals, when positive, sizes the run progress bar;
// pass the interval count you are about to Run. Call before Run so the event
// tail covers the whole run, and Close when done.
func (s *Simulation) ServeObservability(addr string, plannedIntervals int) (*Observability, error) {
	plane := obs.NewPlane(s.nw.Telemetry())
	if plannedIntervals > 0 {
		plane.Tracker.SetPlannedIntervals(int64(plannedIntervals))
	}
	s.addSink(planeSink{plane})
	if err := plane.Start(addr); err != nil {
		return nil, err
	}
	return &Observability{plane: plane}, nil
}

// Addr returns the bound listen address.
func (o *Observability) Addr() string { return o.plane.Addr() }

// Close shuts the HTTP server down, ending any open SSE streams.
func (o *Observability) Close() error { return o.plane.Close() }

// planeSink fans the simulation's event stream into the plane's SSE broker
// and folds interval boundaries into the run progress tracker.
type planeSink struct {
	plane *obs.Plane
}

func (p planeSink) Emit(ev telemetry.Event) {
	p.plane.Broker.Emit(ev)
	if ev.Kind == telemetry.EventInterval {
		p.plane.Tracker.IntervalsDone(ev.K + 1)
	}
}
