package rtmac

import (
	"rtmac/internal/ledger"
	"rtmac/internal/obs"
	"rtmac/internal/telemetry"
)

// Observability is a live HTTP observability plane attached to a running
// simulation. It serves, on the address given to ServeObservability:
//
//	/             an auto-refreshing HTML dashboard
//	/healthz      a liveness probe
//	/metrics      the simulation's metric registry, Prometheus text format
//	/api/progress interval-level run progress as JSON
//	/events       the structured event stream as Server-Sent Events
//
// The plane is passive: with no HTTP clients connected it costs the run
// nothing beyond event construction, and SSE subscribers that fall behind
// drop events rather than stall the simulation.
type Observability struct {
	plane *obs.Plane
}

// ServeObservability starts an observability plane for this simulation on
// addr (e.g. ":8080", or "127.0.0.1:0" to pick a free port — read it back
// with Addr). plannedIntervals, when positive, sizes the run progress bar;
// pass the interval count you are about to Run. Call before Run so the event
// tail covers the whole run, and Close when done.
func (s *Simulation) ServeObservability(addr string, plannedIntervals int) (*Observability, error) {
	plane := obs.NewPlane(s.nw.Telemetry())
	if plannedIntervals > 0 {
		plane.Tracker.SetPlannedIntervals(int64(plannedIntervals))
	}
	s.addSink(planeSink{plane})
	// The provider reads s.journeys dynamically, so enabling journeys before
	// or after serving both work; the tracer's accessors are mutex-guarded
	// against the simulation goroutine.
	plane.SetLinksProvider(func() any { return s.linkBoard() })
	// Likewise dynamic: the /api/health document reflects whether a health
	// plane is attached at request time, and always carries the runtime
	// identity block for the dashboard header.
	plane.SetHealthProvider(func() any { return s.healthDoc() })
	// Also dynamic: /api/alerts reflects whether a watch engine is attached
	// at request time ({"enabled": false} otherwise), and the engine's board
	// accessor is mutex-guarded against the simulation goroutine.
	plane.SetAlertsProvider(func() any { return s.alertBoard() })
	if err := plane.Start(addr); err != nil {
		return nil, err
	}
	return &Observability{plane: plane}, nil
}

// LinkBoard is the /api/links document: per-link deadline-miss attribution,
// swap counts and debt timelines, as recorded by the journey tracer.
type LinkBoard struct {
	// Enabled reports whether a journey tracer is attached; without one the
	// board carries only the requirement vector.
	Enabled bool `json:"enabled"`
	// Sample is the tracer's packet sampling stride (1 = every packet).
	Sample int         `json:"sample,omitempty"`
	Total  Attribution `json:"total"`
	Links  []LinkEntry `json:"links"`
}

// LinkEntry is one link's row on the board.
type LinkEntry struct {
	Link        int         `json:"link"`
	Required    float64     `json:"required"`
	Attribution Attribution `json:"attribution"`
	SwapsUp     int64       `json:"swaps_up"`
	SwapsDown   int64       `json:"swaps_down"`
	// Debt is the link's retained debt timeline, oldest first.
	Debt []DebtPoint `json:"debt"`
}

// linkBoard snapshots the journey tracer into the /api/links document. Safe
// to call from HTTP handlers: it touches only the tracer's mutex-guarded
// accessors and the immutable requirement vector, never live protocol state.
func (s *Simulation) linkBoard() LinkBoard {
	board := LinkBoard{Links: make([]LinkEntry, len(s.req))}
	jt := s.journeys
	if jt != nil {
		board.Enabled = true
		board.Sample = jt.SampleEvery()
		board.Total = jt.Attribution()
	}
	for n := range board.Links {
		e := LinkEntry{Link: n, Required: s.req[n]}
		if jt != nil {
			e.Attribution, _ = jt.LinkAttribution(n)
			e.SwapsUp, e.SwapsDown, _ = jt.Swaps(n)
			e.Debt, _ = jt.Timeline(n)
		}
		board.Links[n] = e
	}
	return board
}

// ServeRunLedger attaches the run ledger at dir to the plane's /api/runs
// endpoint and /history page, plus /api/compare and the /compare page (the
// differential view of any two recorded runs). Each request re-reads the
// ledger, so records appended after the server starts — including this run's
// own, appended when it finishes — show up without a restart.
func (o *Observability) ServeRunLedger(dir string) error {
	store, err := ledger.Open(dir)
	if err != nil {
		return err
	}
	o.plane.SetRunsProvider(func() any {
		h, err := ledger.BuildHistory(store, 200)
		if err != nil {
			return &ledger.History{Enabled: true, Dir: store.Dir()}
		}
		return h
	})
	o.plane.SetCompareProvider(func(refA, refB string) any {
		c, err := ledger.BuildCompare(store, refA, refB, ledger.DiffOptions{})
		if err != nil {
			return &ledger.Compare{Enabled: true, Dir: store.Dir(), Error: err.Error()}
		}
		return c
	})
	return nil
}

// Addr returns the bound listen address.
func (o *Observability) Addr() string { return o.plane.Addr() }

// Close shuts the HTTP server down, ending any open SSE streams.
func (o *Observability) Close() error { return o.plane.Close() }

// planeSink fans the simulation's event stream into the plane's SSE broker
// and folds interval boundaries into the run progress tracker.
type planeSink struct {
	plane *obs.Plane
}

func (p planeSink) Emit(ev telemetry.Event) {
	p.plane.Broker.Emit(ev)
	if ev.Kind == telemetry.EventInterval {
		p.plane.Tracker.IntervalsDone(ev.K + 1)
	}
}
