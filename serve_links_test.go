package rtmac_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"rtmac"
)

func getLinkBoard(t *testing.T, addr string) (int, rtmac.LinkBoard) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/api/links", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var board rtmac.LinkBoard
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&board); err != nil {
			t.Fatalf("/api/links invalid JSON: %v", err)
		}
	}
	return resp.StatusCode, board
}

// TestServeLinksBoard drives the whole journey surface over HTTP: a live
// simulation with journeys enabled serves per-link attribution and debt
// timelines at /api/links, reconciling with the tracer, and the dashboard
// carries the links table.
func TestServeLinksBoard(t *testing.T) {
	links := make([]rtmac.Link, 4)
	for i := range links {
		links[i] = rtmac.Link{
			SuccessProb:   0.7,
			Arrivals:      rtmac.MustBernoulliArrivals(0.6),
			DeliveryRatio: 0.9,
		}
	}
	sim, err := rtmac.NewSimulation(rtmac.Config{
		Seed:     5,
		Profile:  rtmac.ControlProfile(),
		Links:    links,
		Protocol: rtmac.DBDP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	obsrv, err := sim.ServeObservability("127.0.0.1:0", 150)
	if err != nil {
		t.Fatal(err)
	}
	defer obsrv.Close()

	// Before journeys are enabled the board answers, but disabled.
	if code, board := getLinkBoard(t, obsrv.Addr()); code != http.StatusOK || board.Enabled {
		t.Fatalf("pre-journeys board: status %d enabled %v", code, board.Enabled)
	}

	j, err := sim.EnableJourneys(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Poll the board from a second goroutine while the run is live, so the
	// race detector exercises handler-vs-simulation concurrency.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				getLinkBoard(t, obsrv.Addr())
			}
		}
	}()
	if err := sim.Run(150); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done

	code, board := getLinkBoard(t, obsrv.Addr())
	if code != http.StatusOK {
		t.Fatalf("/api/links status %d", code)
	}
	if !board.Enabled || board.Sample != 1 || len(board.Links) != 4 {
		t.Fatalf("board shape: %+v", board)
	}
	if !board.Total.Reconciles() || board.Total.Total != j.Seen() {
		t.Fatalf("board total does not reconcile with tracer: %+v vs seen %d",
			board.Total, j.Seen())
	}
	var merged rtmac.Attribution
	for _, l := range board.Links {
		if !l.Attribution.Reconciles() {
			t.Fatalf("link %d attribution: %+v", l.Link, l.Attribution)
		}
		merged.Merge(l.Attribution)
		if len(l.Debt) != 150 {
			t.Fatalf("link %d holds %d debt points, want 150", l.Link, len(l.Debt))
		}
	}
	if merged != board.Total {
		t.Fatalf("per-link rows %+v do not sum to total %+v", merged, board.Total)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/", obsrv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "api/links") {
		t.Fatal("dashboard does not reference /api/links")
	}
}
